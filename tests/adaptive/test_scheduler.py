"""Unit behaviour of the adaptive meta-scheduler and its parts."""

from __future__ import annotations

import pytest

from repro.adaptive import (
    AdaptiveScheduler,
    DiscountedUCB,
    StageStats,
    retune_kwargs,
)
from repro.adaptive import _balance_efficiency  # noqa: the proxy itself
from repro.core import make
from repro.core.base import SchemeError
from repro.verify import audit_adaptive
from repro.workloads import GaussianPeakWorkload, UniformWorkload

from .conftest import drain


class TestBandit:
    def test_explores_every_arm_once_in_seeded_order(self):
        bandit = DiscountedUCB(4, seed=3)
        played = []
        for _ in range(4):
            arm = bandit.select()
            played.append(arm)
            bandit.update(arm, 0.5)
        assert sorted(played) == [0, 1, 2, 3]
        assert played == DiscountedUCB(4, seed=3).order

    def test_deterministic_given_seed_and_rewards(self):
        def trajectory():
            bandit = DiscountedUCB(3, seed=11)
            arms = []
            rewards = [0.9, 0.2, 0.6, 0.8, 0.85, 0.4, 0.95, 0.7]
            for r in rewards:
                arm = bandit.select()
                arms.append(arm)
                bandit.update(arm, r)
            return arms

        assert trajectory() == trajectory()

    def test_discount_tracks_drift(self):
        # Arm 0 was great early, arm 1 becomes great late; with heavy
        # discounting the bandit must switch to arm 1.
        bandit = DiscountedUCB(2, seed=0, discount=0.5, explore=0.0)
        bandit.update(0, 1.0)
        bandit.update(1, 0.1)
        for _ in range(6):
            bandit.update(0, 0.1)
            bandit.update(1, 1.0)
        assert bandit.select() == 1

    def test_rejects_zero_arms(self):
        with pytest.raises(SchemeError):
            DiscountedUCB(0)


class TestRetune:
    STATS_FLAT = StageStats(chunks=8, iterations=400, mean_cost=1.0,
                            cv=0.0, reward=0.9)
    STATS_SPIKY = StageStats(chunks=8, iterations=400, mean_cost=1.0,
                             cv=1.0, reward=0.5)

    def test_css_refines_under_variance(self):
        flat = retune_kwargs("CSS", {}, self.STATS_FLAT, 400, 4)
        spiky = retune_kwargs("CSS", {}, self.STATS_SPIKY, 400, 4)
        assert spiky["k"] < flat["k"]

    def test_tss_first_shrinks_under_variance(self):
        flat = retune_kwargs("TSS", {}, self.STATS_FLAT, 400, 4)
        spiky = retune_kwargs("TSS", {}, self.STATS_SPIKY, 400, 4)
        assert spiky["first"] < flat["first"]

    def test_fss_alpha_grows_under_variance(self):
        assert retune_kwargs("FSS", {}, self.STATS_FLAT, 400, 4) == {}
        spiky = retune_kwargs("FSS", {}, self.STATS_SPIKY, 400, 4)
        assert spiky["alpha"] > 2.0

    def test_noop_when_inline_already_matches(self):
        want = retune_kwargs("CSS", {}, self.STATS_FLAT, 400, 4)
        again = retune_kwargs("CSS", want, self.STATS_FLAT, 400, 4)
        assert again == {}

    def test_unknown_scheme_untouched(self):
        assert retune_kwargs("SS", {}, self.STATS_SPIKY, 400, 4) == {}


class TestBalanceEfficiency:
    def test_bounds(self):
        eff = _balance_efficiency(
            [3.0, 1.0, 4.0, 1.0, 5.0], [1.0, 1.0], 0.1
        )
        assert 0.0 < eff <= 1.0

    def test_perfect_balance_is_one(self):
        assert _balance_efficiency([1.0] * 8, [1.0] * 4, 0.0) == 1.0

    def test_empty_is_one(self):
        assert _balance_efficiency([], [1.0] * 4, 0.0) == 1.0

    def test_coarse_front_scores_worse_on_hetero_cluster(self):
        """The risk-averse tie-break: a big front chunk lands on the
        slow PE, so coarse-front ladders score below fine ones."""
        speeds = [3.0, 3.0, 1.0, 1.0]
        coarse = [32.0, 16.0, 8.0, 4.0, 2.0, 1.0, 1.0]  # GSS-like
        fine = [8.0] * 8  # CSS-like
        assert _balance_efficiency(
            coarse, speeds, 0.0
        ) < _balance_efficiency(fine, speeds, 0.0)


class TestScheduler:
    def test_single_candidate_single_stage_matches_fixed(self):
        """adaptive:TSS@1 degenerates to plain TSS, chunk for chunk."""
        fixed = drain(make("TSS", 500, 4))
        meta = drain(make("adaptive:TSS@1", 500, 4))
        assert meta == fixed

    def test_tiles_exactly_once(self):
        sched = make("adaptive:TSS+GSS+CSS(32)@6", 1000, 4)
        ledger = drain(sched)
        spans = sorted((s, e) for _w, s, e in ledger)
        cursor = 0
        for start, stop in spans:
            assert start == cursor
            cursor = stop
        assert cursor == 1000

    def test_same_seed_bit_identical(self):
        a = make("adaptive:TSS+FSS+GSS@5", 800, 4, seed=3)
        b = make("adaptive:TSS+FSS+GSS@5", 800, 4, seed=3)
        assert drain(a) == drain(b)
        assert a.decisions == b.decisions

    def test_different_seed_changes_exploration_order(self):
        base = DiscountedUCB(4, seed=0).order
        assert any(
            DiscountedUCB(4, seed=s).order != base for s in range(1, 8)
        )

    def test_decision_log_and_drain(self):
        sched = make("adaptive:TSS+GSS@4", 600, 4)
        drain(sched)
        selects = sched.stage_decisions()
        assert [d.stage for d in selects] == list(
            range(1, len(selects) + 1)
        )
        # every decision was also surfaced through drain_decisions
        # during the run?  No -- nobody drained; they are all pending.
        fresh = sched.drain_decisions()
        assert fresh == sched.decisions
        assert sched.drain_decisions() == []

    def test_audit_passes_on_standalone_drain(self):
        sched = make("adaptive:TSS+GSS+CSS(16)@5", 700, 4)
        ledger = drain(sched)
        report = audit_adaptive(ledger, sched, total=700, workers=4)
        report.raise_if_failed()
        assert "stage-conformance" in report.checks

    def test_audit_catches_forged_decision_log(self):
        sched = make("adaptive:TSS+GSS@3", 400, 4)
        ledger = drain(sched)
        import dataclasses

        forged = [
            dataclasses.replace(d, base=d.base + 1)
            if d.stage == 2 and d.kind == "select" else d
            for d in sched.decisions
        ]
        report = audit_adaptive(ledger, forged, total=400, workers=4)
        assert not report.ok

    def test_cost_feedback_steers_toward_fine_chunks_on_peak(self):
        """On a peaked workload the posted rewards must differ across
        stages -- the feedback loop is live, not constant."""
        wl = GaussianPeakWorkload(900, amplitude=80.0)
        sched = make("adaptive:TSS+FSS+GSS@6", 900, 4)
        sched.bind_workload(wl)
        drain(sched)
        rewards = [
            d.reward for d in sched.stage_decisions()
            if d.reward is not None
        ]
        assert len(set(round(r, 6) for r in rewards)) > 1

    def test_bind_workload_size_mismatch(self):
        sched = AdaptiveScheduler(100, 2)
        with pytest.raises(SchemeError, match="100"):
            sched.bind_workload(UniformWorkload(50))

    def test_timing_feedback_uses_observations(self):
        sched = AdaptiveScheduler(
            200, 2, candidates=("TSS", "GSS"), stages=3,
            feedback="timing",
        )
        ledger = drain_with_timing(sched)
        assert sched.finished
        assert len(sched.stage_decisions()) >= 2
        spans = sorted((s, e) for _w, s, e in ledger)
        assert spans[0][0] == 0 and spans[-1][1] == 200

    def test_retune_decisions_follow_selects(self):
        wl = GaussianPeakWorkload(1200, amplitude=120.0)
        sched = make("adaptive:CSS(64)+GSS@6", 1200, 4)
        sched.bind_workload(wl)
        drain(sched)
        retunes = [d for d in sched.decisions if d.kind == "retune"]
        assert retunes, "tuner never fired on a high-variance workload"
        stages = {d.stage for d in sched.stage_decisions()}
        assert all(d.stage in stages for d in retunes)


def drain_with_timing(scheduler):
    """Round-robin drain that reports synthetic chunk durations."""
    from repro.core.base import WorkerView

    views = [WorkerView(worker_id=i) for i in range(scheduler.workers)]
    ledger = []
    i = 0
    while not scheduler.finished:
        chunk = scheduler.next_chunk(views[i % len(views)])
        if chunk is None:
            break
        ledger.append((i % len(views), chunk.start, chunk.stop))
        scheduler.observe_completion(
            i % len(views), chunk.start, chunk.stop,
            elapsed=0.01 * chunk.size,
        )
        i += 1
    return ledger
