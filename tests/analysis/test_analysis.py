"""Tests for chunk analytics, balance metrics, speedup, and tables."""

from __future__ import annotations

import pytest

from repro.analysis import (
    balance_report,
    chunk_sequence,
    chunk_stats,
    cov,
    efficiency,
    format_chunk_row,
    format_matrix,
    format_time_table,
    max_over_mean,
    per_worker_sizes,
    power_cap,
    range_over_mean,
    speedup_series,
    table1_rows,
)
from repro.simulation import simulate
from repro.workloads import UniformWorkload

from tests.conftest import make_cluster


class TestChunkAnalytics:
    def test_chunk_sequence_matches_drain(self):
        assert chunk_sequence("CSS(10)", 35, 2) == [10, 10, 10, 5]

    def test_per_worker_grouping(self):
        per = per_worker_sizes("FSS", 1000, 4)
        assert per[0][:2] == [125, 62]
        assert all(len(v) == len(per[0]) for v in per.values())

    def test_chunk_stats(self):
        stats = chunk_stats([10, 20, 30])
        assert stats.count == 3
        assert stats.total == 60
        assert stats.largest == 30
        assert stats.smallest == 10
        assert stats.mean == 20.0
        assert stats.messages == 3

    def test_chunk_stats_empty(self):
        stats = chunk_stats([])
        assert stats.count == 0 and stats.total == 0

    def test_table1_has_all_schemes(self):
        rows = table1_rows()
        assert set(rows) == {"S", "SS", "GSS", "TSS", "FSS", "FISS",
                             "TFSS"}


class TestBalance:
    def test_cov_uniform_is_zero(self):
        assert cov([5.0, 5.0, 5.0]) == 0.0

    def test_cov_scale_invariant(self):
        a = cov([1.0, 2.0, 3.0])
        b = cov([10.0, 20.0, 30.0])
        assert a == pytest.approx(b)

    def test_max_over_mean(self):
        assert max_over_mean([1.0, 1.0, 4.0]) == pytest.approx(2.0)
        assert max_over_mean([]) == 1.0

    def test_range_over_mean(self):
        assert range_over_mean([2.0, 4.0]) == pytest.approx(2.0 / 3.0)

    def test_report_keys(self):
        report = balance_report([1.0, 2.0])
        assert set(report) == {"cov", "max_over_mean",
                               "range_over_mean"}


class TestSpeedup:
    def test_series(self):
        pts = speedup_series(60.0, [(1, 60.0), (2, 30.0), (4, 20.0)])
        assert [p.speedup for p in pts] == [1.0, 2.0, 3.0]

    def test_efficiency(self):
        pts = speedup_series(60.0, [(2, 30.0), (4, 30.0)])
        assert efficiency(pts) == [1.0, 0.5]

    def test_power_cap_paper_mix(self):
        # 3 fast (3x) + 5 slow -> 14/3 ~= 4.67 (Figure 6's bound).
        assert power_cap([3.0] * 3 + [1.0] * 5) == pytest.approx(
            14.0 / 3.0
        )

    def test_power_cap_explicit_base(self):
        assert power_cap([2.0, 1.0], fast=1.0) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup_series(0.0, [(1, 1.0)])
        with pytest.raises(ValueError):
            speedup_series(1.0, [(1, 0.0)])
        with pytest.raises(ValueError):
            power_cap([])


class TestTables:
    def test_format_matrix_alignment(self):
        text = format_matrix(
            headers=["A", "B"],
            rows=[["1", "22"], ["333", "4"]],
            row_labels=["x", "y"],
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len(set(len(line) for line in lines[2:])) == 1

    def test_format_matrix_validation(self):
        with pytest.raises(ValueError):
            format_matrix(["A"], [["1", "2"]], ["x"])
        with pytest.raises(ValueError):
            format_matrix(["A"], [["1"]], ["x", "y"])

    def test_format_time_table_matches_paper_layout(self):
        wl = UniformWorkload(100)
        cluster = make_cluster()
        results = {
            "TSS": simulate("TSS", wl, cluster),
            "FSS": simulate("FSS", wl, make_cluster()),
        }
        text = format_time_table(results)
        assert "T_p" in text
        assert "TSS" in text and "FSS" in text
        # One row per PE plus header, rule and T_p.
        assert len(text.splitlines()) == cluster.size + 3

    def test_format_time_table_rejects_mismatched(self):
        wl = UniformWorkload(50)
        results = {
            "A": simulate("TSS", wl, make_cluster(n_fast=1, n_slow=1)),
            "B": simulate("TSS", wl, make_cluster(n_fast=2, n_slow=2)),
        }
        with pytest.raises(ValueError):
            format_time_table(results)
        with pytest.raises(ValueError):
            format_time_table({})

    def test_format_chunk_row_wraps(self):
        text = format_chunk_row(list(range(30)), per_line=10)
        assert len(text.splitlines()) == 3
        assert format_chunk_row([]) == "(empty)"


class TestRuntimeTable:
    def test_runtime_table_from_real_runs(self):
        from repro.analysis import format_runtime_table
        from repro.runtime import run_parallel
        from repro.workloads import UniformWorkload

        wl = UniformWorkload(60)
        results = {
            "TSS": run_parallel("TSS", wl, 2),
            "FSS": run_parallel("FSS", wl, 2),
        }
        text = format_runtime_table(results)
        assert "elapsed" in text
        assert "TSS" in text and "FSS" in text

    def test_runtime_table_rejects_empty(self):
        from repro.analysis import format_runtime_table

        with pytest.raises(ValueError):
            format_runtime_table({})
