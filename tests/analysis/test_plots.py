"""Tests for the ASCII chart renderers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import bar_chart, line_chart, profile_chart


class TestLineChart:
    def test_basic_render(self):
        chart = line_chart(
            {"A": [(1, 1.0), (2, 2.0), (4, 3.0)],
             "B": [(1, 0.5), (2, 1.0), (4, 1.5)]},
            width=40,
            height=10,
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert any("o" in line for line in lines)  # series A marker
        assert any("*" in line for line in lines)  # series B marker
        assert "o=A" in lines[-1] and "*=B" in lines[-1]

    def test_plot_area_dimensions(self):
        chart = line_chart({"A": [(0, 0.0), (1, 1.0)]}, width=30,
                           height=8)
        rows = [line for line in chart.splitlines()
                if line.startswith("|")]
        assert len(rows) == 8
        assert all(len(r) == 31 for r in rows)

    def test_single_point(self):
        chart = line_chart({"A": [(1, 5.0)]})
        assert "o" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"A": []})

    def test_monotone_series_rises_left_to_right(self):
        chart = line_chart({"A": [(0, 0.0), (10, 10.0)]}, width=20,
                           height=10)
        rows = [line[1:] for line in chart.splitlines()
                if line.startswith("|")]
        first_col = [r[0] for r in rows]
        last_col = [r[-1] for r in rows]
        # Marker at bottom-left and top-right.
        assert first_col[-1] == "o"
        assert last_col[0] == "o"


class TestProfileChart:
    def test_shape(self):
        chart = profile_chart(np.arange(100.0), width=50, height=6)
        rows = [line for line in chart.splitlines()
                if line.startswith("|")]
        assert len(rows) == 6

    def test_ramp_fills_rightward(self):
        chart = profile_chart(np.arange(100.0), width=20, height=5)
        bottom = [line for line in chart.splitlines()
                  if line.startswith("|")][-1]
        top = [line for line in chart.splitlines()
               if line.startswith("|")][0]
        assert bottom.count("#") > top.count("#")

    def test_invalid(self):
        with pytest.raises(ValueError):
            profile_chart([])
        with pytest.raises(ValueError):
            profile_chart(np.zeros((2, 2)))


class TestBarChart:
    def test_labels_and_values(self):
        chart = bar_chart({"TSS": 23.6, "DTSS": 13.4}, unit="s")
        assert "TSS" in chart and "DTSS" in chart
        assert "23.6s" in chart and "13.4s" in chart

    def test_longest_bar_is_max(self):
        chart = bar_chart({"a": 1.0, "b": 4.0}, width=40)
        bars = {
            line.split("|")[0].strip(): line.split("|")[1].count("#")
            for line in chart.splitlines()
        }
        assert bars["b"] > bars["a"]

    def test_invalid(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})
