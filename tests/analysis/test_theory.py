"""Cross-check the closed-form step counts against the schedulers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import chunk_sequence
from repro.analysis.theory import (
    css_steps,
    fiss_steps,
    fss_steps,
    gss_steps,
    predicted_steps,
    tfss_steps,
    tss_executable_steps,
    tss_planned_steps,
)
from repro.core import SchemeError


class TestKnownValues:
    def test_css(self):
        assert css_steps(1000, 100) == 10
        assert css_steps(1001, 100) == 11
        assert css_steps(0, 5) == 0

    def test_gss_paper_case(self):
        # The paper's Table 1 GSS row has 22 chunks.
        assert gss_steps(1000, 4) == 22

    def test_tss_paper_case(self):
        assert tss_planned_steps(1000, 4) == 15
        # Executable: 12 full chunks + the clipped 28 = 13.
        assert tss_executable_steps(1000, 4) == 13

    def test_fss_paper_case(self):
        # Table 1 FSS row: 8 stages x 4 = 32 chunks.
        assert fss_steps(1000, 4) == 32

    def test_fiss_paper_case(self):
        assert fiss_steps(1000, 4, stages=3) == 12

    def test_tfss_paper_case(self):
        # 113x4 + 81x4 + 49x4 + 17 + clipped 11 = 14 chunks.
        assert tfss_steps(1000, 4) == 14

    def test_validation(self):
        with pytest.raises(SchemeError):
            css_steps(10, 0)
        with pytest.raises(SchemeError):
            gss_steps(-1, 2)
        with pytest.raises(SchemeError):
            predicted_steps("DTSS", 100, 4)


@given(
    st.sampled_from(["SS", "GSS", "TSS", "FSS", "FISS", "TFSS"]),
    st.integers(min_value=0, max_value=3000),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=200, deadline=None)
def test_theory_matches_executable_schedulers(name, total, workers):
    """The closed forms must equal the real schedulers' chunk counts
    under the synchronous round-robin drain."""
    actual = len(chunk_sequence(name, total, workers))
    predicted = predicted_steps(name, total, workers)
    assert actual == predicted, (name, total, workers)


@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=200),
)
@settings(max_examples=100, deadline=None)
def test_css_closed_form(total, k):
    actual = len(chunk_sequence("CSS", total, 4, k=k))
    assert actual == css_steps(total, k)


@given(
    st.integers(min_value=1, max_value=3000),
    st.integers(min_value=1, max_value=12),
    st.sampled_from(["half-even", "ceil", "floor"]),
)
@settings(max_examples=100, deadline=None)
def test_fss_closed_form_all_roundings(total, workers, rounding):
    actual = len(
        chunk_sequence("FSS", total, workers, rounding=rounding)
    )
    assert actual == fss_steps(total, workers, rounding=rounding)
