"""Chaos harness tests: fault plans, both engines, real runtime."""
