"""The tentpole acceptance test: one seeded plan, every substrate.

The same :class:`FaultPlan` (mapped onto each substrate's timescale
with :meth:`FaultPlan.scaled`) must yield an auditor-clean trace and a
final result bit-identical to the serial execution on the master-slave
simulator, the TreeS simulator, and the real multiprocessing runtime --
hence bit-identical across substrates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import FaultPlan, run_chaos
from repro.simulation import (
    ClusterSpec,
    NodeSpec,
    SimulationError,
    simulate,
    simulate_tree,
)
from repro.verify import audit_run, audit_sim
from repro.workloads import SpinWorkload


N_WORKERS = 3


@pytest.fixture(scope="module")
def workload():
    return SpinWorkload(60, spins=50, veclen=4096)


@pytest.fixture(scope="module")
def serial(workload):
    return workload.execute_serial()


def sim_cluster(n: int = N_WORKERS) -> ClusterSpec:
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(n)]
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("scheme", ["TSS", "DTSS"])
def test_same_plan_all_substrates(seed, scheme, workload, serial):
    plan = FaultPlan.random(seed=seed, workers=N_WORKERS, horizon=1.0)

    # -- master-slave simulator (virtual time) -------------------------
    clean = simulate(scheme, workload, sim_cluster())
    sim = simulate(
        scheme, workload, sim_cluster(),
        chaos=plan.scaled(0.5 * clean.t_p), collect_results=True,
    )
    audit_sim(sim, workload.size, scheme=scheme).raise_if_failed()
    np.testing.assert_array_equal(sim.results, serial)

    # -- TreeS simulator (virtual time, decentralized) -----------------
    tree_clean = simulate_tree(workload, sim_cluster())
    try:
        tree = simulate_tree(
            workload, sim_cluster(),
            chaos=plan.scaled(0.5 * tree_clean.t_p),
            collect_results=True,
        )
    except SimulationError as exc:
        # documented unrecoverable fail-stop case; never silent
        assert "could not recover" in str(exc)
    else:
        audit_sim(tree, workload.size).raise_if_failed()
        np.testing.assert_array_equal(tree.results, serial)

    # -- real multiprocessing runtime (wall clock) ---------------------
    run = run_chaos(scheme, workload, N_WORKERS, plan,
                    time_scale=0.15)
    audit_run(run, workload=workload, scheme=scheme,
              workers=N_WORKERS).raise_if_failed()
    np.testing.assert_array_equal(run.results, serial)
