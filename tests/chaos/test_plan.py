"""FaultPlan construction, validation, serialization, generation."""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    ChaosError,
    FaultPlan,
    LoadSpike,
    MasterStall,
    MessageDelay,
    MessageLoss,
    WorkerDeath,
    WorkerRestart,
)


class TestValidation:
    def test_empty_plan_is_fine(self):
        plan = FaultPlan()
        assert plan.events == ()
        assert plan.max_worker == -1
        assert plan.horizon == 0.0
        assert plan.summary() == "(empty fault plan)"

    def test_restart_without_death_rejected(self):
        with pytest.raises(ChaosError, match="alternate"):
            FaultPlan(events=(WorkerRestart(worker=1, at=0.5),))

    def test_double_death_rejected(self):
        with pytest.raises(ChaosError, match="alternate"):
            FaultPlan(events=(
                WorkerDeath(worker=1, at=0.1),
                WorkerDeath(worker=1, at=0.2),
            ))

    def test_death_restart_death_ok(self):
        plan = FaultPlan(events=(
            WorkerDeath(worker=2, at=0.1),
            WorkerRestart(worker=2, at=0.2),
            WorkerDeath(worker=2, at=0.3),
        ))
        assert len(plan.deaths) == 2
        assert len(plan.restarts) == 1

    def test_restart_must_follow_death_in_time(self):
        with pytest.raises(ChaosError, match="increase|alternate"):
            FaultPlan(events=(
                WorkerDeath(worker=1, at=0.5),
                WorkerRestart(worker=1, at=0.5),
            ))

    def test_negative_time_rejected(self):
        with pytest.raises(ChaosError):
            WorkerDeath(worker=0, at=-1.0)

    def test_bad_event_params_rejected(self):
        with pytest.raises(ChaosError):
            MessageDelay(worker=0, at=0.0, delay=0.0)
        with pytest.raises(ChaosError):
            MasterStall(at=0.0, duration=-1.0)
        with pytest.raises(ChaosError):
            LoadSpike(worker=0, at=0.0, duration=1.0, extra_q=0)
        with pytest.raises(ChaosError):
            FaultPlan(retry_after=0.0)
        with pytest.raises(ChaosError):
            FaultPlan(events=("not-an-event",))


class TestViews:
    def _plan(self) -> FaultPlan:
        return FaultPlan(events=(
            WorkerDeath(worker=1, at=0.4),
            WorkerRestart(worker=1, at=0.8),
            MessageDelay(worker=0, at=0.1, delay=0.05),
            MessageLoss(worker=0, at=0.3),
            MasterStall(at=0.2, duration=0.1),
            LoadSpike(worker=2, at=0.5, duration=0.4, extra_q=3),
        ), retry_after=0.02)

    def test_kind_views(self):
        plan = self._plan()
        assert [e.kind for e in plan.deaths] == ["death"]
        assert [e.kind for e in plan.restarts] == ["restart"]
        assert [e.kind for e in plan.stalls] == ["stall"]
        assert [e.kind for e in plan.spikes] == ["spike"]

    def test_message_faults_merge_delay_and_loss(self):
        plan = self._plan()
        faults = plan.message_faults(0)
        assert faults == [(0.1, "delay", 0.05), (0.3, "loss", 0.02)]
        assert plan.message_faults(1) == []

    def test_max_worker_and_horizon(self):
        plan = self._plan()
        assert plan.max_worker == 2
        # spike runs until 0.5 + 0.4
        assert plan.horizon == pytest.approx(0.9)

    def test_scaled(self):
        plan = self._plan().scaled(10.0)
        assert plan.deaths[0].at == pytest.approx(4.0)
        assert plan.stalls[0].duration == pytest.approx(1.0)
        assert plan.retry_after == pytest.approx(0.2)
        assert plan.message_faults(0)[0][2] == pytest.approx(0.5)
        with pytest.raises(ChaosError):
            plan.scaled(0.0)


class TestSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan.random(seed=7, workers=4, horizon=3.0)
        doc = json.loads(json.dumps(plan.to_json()))
        clone = FaultPlan.from_json(doc)
        assert clone == plan

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ChaosError, match="unknown fault kind"):
            FaultPlan.from_json({"events": [{"kind": "meteor"}]})


class TestRandom:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(seed=42, workers=5)
        b = FaultPlan.random(seed=42, workers=5)
        assert a == b
        assert a.seed == 42

    def test_different_seeds_differ(self):
        assert FaultPlan.random(seed=1, workers=5) \
            != FaultPlan.random(seed=2, workers=5)

    def test_worker_zero_never_dies(self):
        for seed in range(30):
            plan = FaultPlan.random(seed=seed, workers=4, deaths=3)
            assert all(d.worker != 0 for d in plan.deaths)

    def test_targets_stay_in_range(self):
        for seed in range(20):
            plan = FaultPlan.random(seed=seed, workers=3)
            assert plan.max_worker < 3

    def test_invalid_args(self):
        with pytest.raises(ChaosError):
            FaultPlan.random(seed=0, workers=0)
        with pytest.raises(ChaosError):
            FaultPlan.random(seed=0, workers=2, horizon=0.0)
