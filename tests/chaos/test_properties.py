"""Property-based chaos tests: any plan, any scheme, any cluster.

For arbitrary (seeded) fault plans over arbitrary small clusters and
workloads, every registered scheme must keep the run's trace
auditor-clean and its results bit-identical to the serial execution.
This is the chaos-hardened version of the scheme invariants in
``tests/core/test_properties.py``, checked through the whole
discrete-event engine instead of on the pure policy objects.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan
from repro.core import names
from repro.simulation import (
    ClusterSpec,
    ConstantLoad,
    NodeSpec,
    RandomLoad,
    SimulationError,
    simulate,
    simulate_tree,
)
from repro.verify import audit_sim
from repro.workloads import GaussianPeakWorkload, UniformWorkload

ALL_SCHEMES = sorted(names())


@st.composite
def chaos_case(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    total = draw(st.integers(min_value=50, max_value=400))
    plan_seed = draw(st.integers(min_value=0, max_value=10**6))
    load_seed = draw(st.integers(min_value=0, max_value=10**6))
    speeds = [
        float(draw(st.sampled_from([50, 100, 150, 300])))
        for _ in range(n)
    ]
    loaded = draw(st.booleans())
    nodes = [
        NodeSpec(
            name=f"n{i}",
            speed=speeds[i],
            load=(RandomLoad(seed=load_seed + i, arrival_rate=0.5,
                             mean_duration=1.0)
                  if loaded and i % 2 else ConstantLoad(1)),
        )
        for i in range(n)
    ]
    peaked = draw(st.booleans())
    workload = (
        GaussianPeakWorkload(total, amplitude=25.0)
        if peaked else UniformWorkload(total)
    )
    plan = FaultPlan.random(
        seed=plan_seed, workers=n, horizon=2.0,
        deaths=draw(st.integers(min_value=0, max_value=2)),
    )
    return workload, ClusterSpec(nodes=nodes), plan


@given(chaos_case(), st.sampled_from(ALL_SCHEMES))
@settings(max_examples=30, deadline=None)
def test_any_scheme_survives_any_plan(case, scheme):
    workload, cluster, plan = case
    result = simulate(scheme, workload, cluster, chaos=plan,
                      collect_results=True)
    audit_sim(result, workload.size, scheme=scheme).raise_if_failed()
    np.testing.assert_allclose(result.results, workload.costs())


@given(chaos_case())
@settings(max_examples=15, deadline=None)
def test_tree_engine_survives_or_reports(case):
    workload, cluster, plan = case
    try:
        result = simulate_tree(workload, cluster, chaos=plan,
                               collect_results=True)
    except SimulationError as exc:
        # the documented unrecoverable fail-stop case -- never silent
        assert "could not recover" in str(exc)
        return
    audit_sim(result, workload.size).raise_if_failed()
    np.testing.assert_allclose(result.results, workload.costs())


@given(chaos_case(), st.sampled_from(["TSS", "DTSS", "FSS"]))
@settings(max_examples=15, deadline=None)
def test_chaos_runs_are_deterministic(case, scheme):
    workload, cluster, plan = case
    first = simulate(scheme, workload, cluster, chaos=plan)
    second = simulate(scheme, workload, cluster, chaos=plan)
    assert first.t_p == second.t_p
    assert [(c.worker, c.start, c.stop, c.assigned_at, c.completed_at)
            for c in first.chunks] \
        == [(c.worker, c.start, c.stop, c.assigned_at, c.completed_at)
            for c in second.chunks]


@given(st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_random_plans_always_validate(seed, workers):
    plan = FaultPlan.random(seed=seed, workers=workers, deaths=2,
                            delays=2, losses=2, stalls=2, spikes=2)
    assert plan.max_worker < workers
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
