"""FaultPlan replay on the real multiprocessing runtime (run_chaos)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    ChaosError,
    FaultPlan,
    LoadSpike,
    MasterStall,
    MessageDelay,
    MessageLoss,
    WorkerDeath,
    run_chaos,
)
from repro.verify import audit_run
from repro.workloads import SpinWorkload, UniformWorkload


@pytest.fixture(scope="module")
def spin_workload():
    return SpinWorkload(60, spins=50, veclen=4096)


@pytest.fixture(scope="module")
def spin_serial(spin_workload):
    return spin_workload.execute_serial()


class TestRunChaos:
    def test_death_without_restart(self, spin_workload, spin_serial):
        plan = FaultPlan(events=(WorkerDeath(worker=2, at=0.02),))
        run = run_chaos("GSS", spin_workload, 3, plan)
        audit_run(run, workload=spin_workload).raise_if_failed()
        np.testing.assert_array_equal(run.results, spin_serial)

    def test_timing_faults_only(self, spin_workload, spin_serial):
        plan = FaultPlan(events=(
            MessageDelay(worker=0, at=0.0, delay=0.05),
            MessageLoss(worker=1, at=0.01),
            MasterStall(at=0.02, duration=0.05),
        ), retry_after=0.03)
        run = run_chaos("TSS", spin_workload, 3, plan)
        audit_run(run, workload=spin_workload, scheme="TSS",
                  workers=3).raise_if_failed()
        np.testing.assert_array_equal(run.results, spin_serial)
        assert run.requeued == 0  # nobody died

    def test_load_spike(self, spin_workload, spin_serial):
        plan = FaultPlan(events=(
            LoadSpike(worker=1, at=0.0, duration=0.2, extra_q=2),
        ))
        run = run_chaos("FSS", spin_workload, 3, plan, stress_size=100)
        audit_run(run, workload=spin_workload).raise_if_failed()
        np.testing.assert_array_equal(run.results, spin_serial)

    def test_plan_outside_worker_range_rejected(self, spin_workload):
        plan = FaultPlan(events=(WorkerDeath(worker=5, at=0.1),))
        with pytest.raises(ChaosError, match="targets worker"):
            run_chaos("TSS", spin_workload, 3, plan)

    def test_empty_plan_equals_plain_run(self):
        wl = UniformWorkload(50)
        run = run_chaos("CSS", wl, 2, FaultPlan(), k=10)
        audit_run(run, workload=wl, scheme="CSS", workers=2,
                  k=10).raise_if_failed()
        np.testing.assert_array_equal(run.results, wl.execute_serial())

    def test_time_scale_maps_plan(self, spin_workload, spin_serial):
        # A virtual-time plan (death at t=2.0) mapped into the first
        # few hundredths of a second of wall clock.
        plan = FaultPlan(events=(WorkerDeath(worker=1, at=2.0),))
        run = run_chaos("CSS", spin_workload, 3, plan,
                        time_scale=0.01, k=6)
        audit_run(run, workload=spin_workload).raise_if_failed()
        np.testing.assert_array_equal(run.results, spin_serial)
