"""FaultPlan injection in the master--slave discrete-event engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    FaultPlan,
    LoadSpike,
    MasterStall,
    MessageDelay,
    MessageLoss,
    WorkerDeath,
    WorkerRestart,
)
from repro.simulation import (
    ClusterSpec,
    NodeSpec,
    SimulationError,
    simulate,
)
from repro.workloads import GaussianPeakWorkload, UniformWorkload


def flat_cluster(n: int = 4, speed: float = 100.0) -> ClusterSpec:
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=speed) for i in range(n)]
    )


def exact_coverage(result, total: int) -> None:
    spans = sorted((c.start, c.stop) for c in result.chunks)
    cursor = 0
    for start, stop in spans:
        assert start == cursor, (start, cursor)
        cursor = stop
    assert cursor == total


class TestDeathAndRestart:
    def test_death_then_restart_completes_exactly_once(self):
        wl = GaussianPeakWorkload(300, amplitude=20.0)
        plan = FaultPlan(events=(
            WorkerDeath(worker=1, at=0.3),
            WorkerRestart(worker=1, at=0.9),
        ))
        result = simulate("TSS", wl, flat_cluster(), chaos=plan,
                          collect_results=True)
        exact_coverage(result, 300)
        np.testing.assert_allclose(result.results, wl.costs())

    def test_restarted_worker_does_new_work(self):
        wl = UniformWorkload(600)
        plan = FaultPlan(events=(
            WorkerDeath(worker=1, at=0.2),
            WorkerRestart(worker=1, at=0.5),
        ))
        result = simulate("SS", wl, flat_cluster(), chaos=plan)
        revived = result.workers[1]
        # It died early in a long run, came back, and kept computing.
        assert revived.finished_at > 0.5
        assert revived.iterations > 0

    def test_plan_and_fails_at_compose(self):
        # NodeSpec.fails_at (the pre-existing injection point) and a
        # chaos plan may target different workers in the same run.
        wl = UniformWorkload(400)
        nodes = [NodeSpec(name=f"n{i}", speed=100.0) for i in range(4)]
        nodes[2] = NodeSpec(name="n2", speed=100.0, fails_at=0.4)
        plan = FaultPlan(events=(WorkerDeath(worker=1, at=0.3),))
        result = simulate("GSS", wl, ClusterSpec(nodes=nodes),
                          chaos=plan)
        exact_coverage(result, 400)

    def test_all_dead_without_restart_raises(self):
        wl = UniformWorkload(500)
        plan = FaultPlan(events=tuple(
            WorkerDeath(worker=i, at=0.2) for i in range(3)
        ))
        with pytest.raises(SimulationError):
            simulate("TSS", wl, flat_cluster(3), chaos=plan)

    def test_all_dead_with_future_restart_recovers(self):
        wl = UniformWorkload(500)
        plan = FaultPlan(events=(
            WorkerDeath(worker=0, at=0.2),
            WorkerDeath(worker=1, at=0.2),
            WorkerDeath(worker=2, at=0.2),
            WorkerRestart(worker=2, at=0.6),
        ))
        result = simulate("TSS", wl, flat_cluster(3), chaos=plan,
                          collect_results=True)
        exact_coverage(result, 500)
        np.testing.assert_allclose(result.results, wl.costs())

    def test_plan_outside_cluster_rejected(self):
        wl = UniformWorkload(100)
        plan = FaultPlan(events=(WorkerDeath(worker=9, at=0.1),))
        with pytest.raises(SimulationError, match="targets worker"):
            simulate("TSS", wl, flat_cluster(3), chaos=plan)


class TestTimingFaults:
    def test_master_stall_delays_completion(self):
        wl = UniformWorkload(300)
        base = simulate("SS", wl, flat_cluster())
        stalled = simulate(
            "SS", wl, flat_cluster(),
            chaos=FaultPlan(events=(MasterStall(at=0.0, duration=2.0),)),
        )
        assert stalled.t_p > base.t_p + 1.0
        exact_coverage(stalled, 300)

    def test_message_delay_adds_wait_and_preserves_results(self):
        wl = GaussianPeakWorkload(200, amplitude=10.0)
        base = simulate("TSS", wl, flat_cluster())
        plan = FaultPlan(events=(
            MessageDelay(worker=2, at=0.0, delay=1.5),
        ))
        delayed = simulate("TSS", wl, flat_cluster(), chaos=plan,
                           collect_results=True)
        assert delayed.workers[2].t_wait > base.workers[2].t_wait + 1.0
        np.testing.assert_allclose(delayed.results, wl.costs())

    def test_message_loss_is_delay_by_retry_after(self):
        wl = UniformWorkload(200)
        loss = simulate(
            "TSS", wl, flat_cluster(),
            chaos=FaultPlan(events=(MessageLoss(worker=1, at=0.0),),
                            retry_after=1.0),
        )
        delay = simulate(
            "TSS", wl, flat_cluster(),
            chaos=FaultPlan(events=(
                MessageDelay(worker=1, at=0.0, delay=1.0),
            )),
        )
        assert loss.t_p == pytest.approx(delay.t_p)

    def test_load_spike_slows_victim(self):
        wl = UniformWorkload(400)
        base = simulate("SS", wl, flat_cluster())
        spiked = simulate(
            "SS", wl, flat_cluster(),
            chaos=FaultPlan(events=(
                LoadSpike(worker=0, at=0.0, duration=base.t_p * 2,
                          extra_q=4),
            )),
        )
        # Worker 0 computes at 1/5 speed for the whole run: it delivers
        # fewer iterations than in the clean run.
        assert spiked.workers[0].iterations < base.workers[0].iterations
        exact_coverage(spiked, 400)

    def test_spike_does_not_mutate_caller_cluster(self):
        wl = UniformWorkload(100)
        cluster = flat_cluster()
        before = [n.load for n in cluster.nodes]
        simulate(
            "TSS", wl, cluster,
            chaos=FaultPlan(events=(
                LoadSpike(worker=1, at=0.0, duration=1.0),
            )),
        )
        assert [n.load for n in cluster.nodes] == before


class TestDeterminism:
    def test_same_plan_same_trace(self):
        wl = GaussianPeakWorkload(250, amplitude=15.0)
        plan = FaultPlan.random(seed=5, workers=4, horizon=1.0)
        first = simulate("DTSS", wl, flat_cluster(), chaos=plan)
        second = simulate("DTSS", wl, flat_cluster(), chaos=plan)
        assert [(c.worker, c.start, c.stop, c.assigned_at)
                for c in first.chunks] \
            == [(c.worker, c.start, c.stop, c.assigned_at)
                for c in second.chunks]
        assert first.t_p == second.t_p

    @pytest.mark.parametrize("scheme", ["SS", "GSS", "TSS", "FSS",
                                        "DTSS", "DTFSS"])
    def test_random_plans_keep_results_exact(self, scheme):
        wl = GaussianPeakWorkload(220, amplitude=12.0)
        for seed in range(3):
            plan = FaultPlan.random(seed=seed, workers=4, horizon=1.0)
            result = simulate(scheme, wl, flat_cluster(), chaos=plan,
                              collect_results=True)
            exact_coverage(result, 220)
            np.testing.assert_allclose(result.results, wl.costs())
