"""FaultPlan injection in the decentralized TreeS engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    FaultPlan,
    MasterStall,
    MessageDelay,
    WorkerDeath,
    WorkerRestart,
)
from repro.simulation import (
    ClusterSpec,
    NodeSpec,
    SimulationError,
    simulate_tree,
)
from repro.workloads import GaussianPeakWorkload, UniformWorkload


def flat_cluster(n: int = 4, speed: float = 100.0) -> ClusterSpec:
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=speed) for i in range(n)]
    )


def exact_coverage(result, total: int) -> None:
    spans = sorted((c.start, c.stop) for c in result.chunks)
    cursor = 0
    for start, stop in spans:
        assert start == cursor, (start, cursor)
        cursor = stop
    assert cursor == total


class TestTreeDeath:
    def test_partners_reclaim_dead_pe_queue(self):
        # Kill a PE early: its untouched block must be swept by the
        # partners (decentralized recovery -- no master to requeue).
        wl = UniformWorkload(400)
        plan = FaultPlan(events=(WorkerDeath(worker=2, at=0.05),))
        result = simulate_tree(wl, flat_cluster(), chaos=plan,
                               collect_results=True)
        exact_coverage(result, 400)
        np.testing.assert_allclose(result.results, wl.costs())
        # the survivors computed the victim's quarter
        assert result.workers[2].iterations < 100

    def test_death_and_rejoin(self):
        wl = GaussianPeakWorkload(360, amplitude=18.0)
        plan = FaultPlan(events=(
            WorkerDeath(worker=1, at=0.2),
            WorkerRestart(worker=1, at=0.8),
        ))
        result = simulate_tree(wl, flat_cluster(), chaos=plan,
                               collect_results=True)
        exact_coverage(result, 360)
        np.testing.assert_allclose(result.results, wl.costs())

    def test_mid_chunk_death_rolls_back_unflushed_work(self):
        # Results computed but not yet flushed die with the PE; the
        # trace must still show exactly-once coverage (recomputation).
        wl = UniformWorkload(500)
        plan = FaultPlan(events=(WorkerDeath(worker=3, at=1.0),))
        result = simulate_tree(wl, flat_cluster(), flush_interval=5.0,
                               chaos=plan, collect_results=True)
        exact_coverage(result, 500)
        np.testing.assert_allclose(result.results, wl.costs())

    def test_unrecoverable_plan_raises_with_chaos_message(self):
        # A PE that dies holding unflushed results *after* every
        # survivor finished leaves nobody to recompute: documented
        # unrecoverable fail-stop case, reported as SimulationError.
        wl = UniformWorkload(200)
        cluster = ClusterSpec(nodes=[
            NodeSpec(name="fast", speed=1000.0),
            NodeSpec(name="slow", speed=1.0),
        ])
        plan = FaultPlan(events=(WorkerDeath(worker=1, at=50.0),))
        with pytest.raises(SimulationError,
                           match="could not recover"):
            simulate_tree(wl, cluster, flush_interval=1000.0,
                          min_steal=10**6, chaos=plan)

    def test_plan_outside_cluster_rejected(self):
        wl = UniformWorkload(100)
        plan = FaultPlan(events=(WorkerDeath(worker=7, at=0.1),))
        with pytest.raises(SimulationError, match="targets worker"):
            simulate_tree(wl, flat_cluster(3), chaos=plan)


class TestTreeTimingFaults:
    def test_stall_delays_link(self):
        wl = UniformWorkload(300)
        base = simulate_tree(wl, flat_cluster())
        stalled = simulate_tree(
            wl, flat_cluster(),
            chaos=FaultPlan(events=(MasterStall(at=0.0, duration=3.0),)),
        )
        assert stalled.t_p >= base.t_p
        exact_coverage(stalled, 300)

    def test_message_delay_applies_to_flush(self):
        wl = UniformWorkload(300)
        plan = FaultPlan(events=(
            MessageDelay(worker=0, at=0.0, delay=2.0),
        ))
        delayed = simulate_tree(wl, flat_cluster(), chaos=plan)
        base = simulate_tree(wl, flat_cluster())
        assert delayed.t_p > base.t_p
        exact_coverage(delayed, 300)


class TestTreeDeterminism:
    def test_same_plan_same_trace(self):
        wl = GaussianPeakWorkload(320, amplitude=16.0)
        plan = FaultPlan.random(seed=11, workers=4, horizon=1.5)
        first = simulate_tree(wl, flat_cluster(), chaos=plan)
        second = simulate_tree(wl, flat_cluster(), chaos=plan)
        assert [(c.worker, c.start, c.stop) for c in first.chunks] \
            == [(c.worker, c.start, c.stop) for c in second.chunks]
        assert first.t_p == second.t_p

    def test_random_plans_recover_or_report(self):
        wl = GaussianPeakWorkload(280, amplitude=14.0)
        recovered = 0
        for seed in range(8):
            plan = FaultPlan.random(seed=seed, workers=4, horizon=1.5)
            try:
                result = simulate_tree(wl, flat_cluster(), chaos=plan,
                                       collect_results=True)
            except SimulationError as exc:
                assert "could not recover" in str(exc)
                continue
            recovered += 1
            exact_coverage(result, 280)
            np.testing.assert_allclose(result.results, wl.costs())
        # the documented unrecoverable case must stay the exception
        assert recovered >= 5
