"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro import cache
from repro.simulation import ClusterSpec, ConstantLoad, NodeSpec
from repro.workloads import (
    GaussianPeakWorkload,
    MandelbrotWorkload,
    ReorderedWorkload,
    UniformWorkload,
)


# Hypothesis profiles: "ci" is derandomized so the chaos CI job is
# reproducible run to run; "chaos" digs deeper for local soak testing.
# Select with HYPOTHESIS_PROFILE=ci|chaos (default: hypothesis default).
hypothesis_settings.register_profile(
    "ci", derandomize=True, max_examples=25, deadline=None
)
hypothesis_settings.register_profile(
    "chaos", max_examples=300, deadline=None
)
if os.environ.get("HYPOTHESIS_PROFILE"):
    hypothesis_settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture(autouse=True)
def _audit_every_simulation(monkeypatch):
    """Run the trace invariant auditor on every simulated run.

    Wraps ``MasterSlaveSimulation.run`` and ``TreeSimulation.run`` so
    *any* test that simulates -- chaos or not -- gets its trace checked
    for exactly-once coverage, monotone times, and metrics agreement.
    A scheduling bug anywhere in the suite fails loudly here instead of
    corrupting results silently.
    """
    from repro.decentral.sim_engine import DecentralSimulation
    from repro.simulation.engine import MasterSlaveSimulation
    from repro.simulation.tree_engine import TreeSimulation
    from repro.verify import audit_sim

    orig_master = MasterSlaveSimulation.run
    orig_tree = TreeSimulation.run
    orig_decentral = DecentralSimulation.run

    def run_master(self):
        result = orig_master(self)
        audit_sim(result, self.scheduler.total).raise_if_failed()
        return result

    def run_tree(self):
        result = orig_tree(self)
        audit_sim(result, self.workload.size).raise_if_failed()
        return result

    def run_decentral(self):
        result = orig_decentral(self)
        audit_sim(result, self.workload.size).raise_if_failed()
        return result

    monkeypatch.setattr(MasterSlaveSimulation, "run", run_master)
    monkeypatch.setattr(TreeSimulation, "run", run_tree)
    monkeypatch.setattr(DecentralSimulation, "run", run_decentral)
    yield


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cost_cache(tmp_path_factory):
    """Point the persistent cost-profile cache at a session temp dir.

    Tests must not read or pollute the developer's ``~/.cache/repro``;
    within the session the cache still works normally (so cache
    behaviour is itself testable -- individual tests reconfigure it
    with their own directories as needed).
    """
    directory = tmp_path_factory.mktemp("cost-cache")
    cache.configure(directory=directory)
    yield
    cache.configure(directory=directory)


@pytest.fixture(scope="session")
def small_mandelbrot() -> MandelbrotWorkload:
    """A small Mandelbrot workload shared across tests (cost-cached)."""
    return MandelbrotWorkload(96, 64, max_iter=32)


@pytest.fixture(scope="session")
def reordered_mandelbrot(small_mandelbrot) -> ReorderedWorkload:
    return ReorderedWorkload(small_mandelbrot, sf=4)


@pytest.fixture()
def uniform_workload() -> UniformWorkload:
    return UniformWorkload(200, unit=5.0)


@pytest.fixture()
def peak_workload() -> GaussianPeakWorkload:
    return GaussianPeakWorkload(300, amplitude=50.0)


def make_cluster(
    n_fast: int = 2,
    n_slow: int = 2,
    fast_speed: float = 300.0,
    overloaded: tuple[int, ...] = (),
    q: int = 3,
    **kwargs,
) -> ClusterSpec:
    """A small heterogeneous cluster for engine tests."""
    nodes = []
    for i in range(n_fast):
        nodes.append(
            NodeSpec(
                name=f"fast{i}",
                speed=fast_speed,
                bandwidth=1.25e7,
                load=ConstantLoad(q if i in overloaded else 1),
            )
        )
    for j in range(n_slow):
        idx = n_fast + j
        nodes.append(
            NodeSpec(
                name=f"slow{j}",
                speed=fast_speed / 3.0,
                bandwidth=1.25e6,
                load=ConstantLoad(q if idx in overloaded else 1),
            )
        )
    return ClusterSpec(nodes=nodes, **kwargs)


@pytest.fixture()
def hetero_cluster() -> ClusterSpec:
    return make_cluster()
