"""Tests for the ACP model (paper Sec. 3.1 and 5.2)."""

from __future__ import annotations

import pytest

from repro.core import CLASSIC_ACP, IMPROVED_ACP, AcpModel, SchemeError


class TestClassicModel:
    def test_integer_division(self):
        assert CLASSIC_ACP.acp(2.0, 1) == 2
        assert CLASSIC_ACP.acp(2.0, 2) == 1

    def test_paper_starvation_example(self):
        # Sec. 5.2-I: V = (1, 3), queues (2, 4) -> both ACPs floor to 0
        # and "the solving of the problem will have to wait".
        assert CLASSIC_ACP.acp(1.0, 2) == 0
        assert CLASSIC_ACP.acp(3.0, 4) == 0
        assert not CLASSIC_ACP.available(1.0, 2)
        assert not CLASSIC_ACP.available(3.0, 4)


class TestImprovedModel:
    def test_paper_scaled_example(self):
        # Same example under the improvement: A_1 = 5, A_2 = 7.
        assert IMPROVED_ACP.acp(1.0, 2) == 5
        assert IMPROVED_ACP.acp(3.0, 4) == 7

    def test_decimal_virtual_power(self):
        # Sec. 5.2-II: V = 3.4, Q = 4 -> A = floor(0.85 * 10) = 8
        # (integer V would under-estimate at 7).
        assert IMPROVED_ACP.acp(3.4, 4) == 8
        assert IMPROVED_ACP.acp(3.0, 4) == 7

    def test_availability_threshold(self):
        # Sec. 5.2-I example: A_min = 6 admits only the faster PE.
        model = AcpModel(scale=10, a_min=6)
        assert not model.available(1.0, 2)  # A = 5 < 6
        assert model.available(3.0, 4)  # A = 7 >= 6

    def test_a_min_zero_still_requires_positive_acp(self):
        model = AcpModel(scale=1, a_min=0)
        assert not model.available(1.0, 2)  # A = 0 can do no work

    def test_scale_100(self):
        model = AcpModel(scale=100)
        assert model.acp(1.0, 3) == 33


class TestValidation:
    def test_bad_scale(self):
        with pytest.raises(SchemeError):
            AcpModel(scale=0)

    def test_bad_a_min(self):
        with pytest.raises(SchemeError):
            AcpModel(a_min=-1)

    def test_bad_inputs(self):
        with pytest.raises(SchemeError):
            IMPROVED_ACP.acp(0.0, 1)
        with pytest.raises(SchemeError):
            IMPROVED_ACP.acp(1.0, 0)

    def test_dedicated_fast_pe(self):
        assert IMPROVED_ACP.acp(3.0, 1) == 30
