"""Tests for the Scheduler base protocol (repro.core.base)."""

from __future__ import annotations

import pytest

from repro.core import (
    ChunkAssignment,
    SchemeError,
    WorkerView,
    drain,
    make,
)
from repro.core.chunk import ChunkScheduler


class TestWorkerView:
    def test_defaults(self):
        view = WorkerView(0)
        assert view.virtual_power == 1.0
        assert view.run_queue == 1
        assert view.acp is None

    def test_negative_worker_id_rejected(self):
        with pytest.raises(SchemeError):
            WorkerView(-1)

    def test_nonpositive_power_rejected(self):
        with pytest.raises(SchemeError):
            WorkerView(0, virtual_power=0.0)

    def test_zero_run_queue_rejected(self):
        with pytest.raises(SchemeError):
            WorkerView(0, run_queue=0)

    def test_decimal_virtual_power_allowed(self):
        # Paper Sec. 5.2-II: decimal virtual powers are a feature.
        assert WorkerView(0, virtual_power=3.4).virtual_power == 3.4


class TestChunkAssignment:
    def test_size_and_indices(self):
        chunk = ChunkAssignment(start=5, stop=9, worker_id=1, step=1)
        assert chunk.size == 4
        assert list(chunk.indices()) == [5, 6, 7, 8]

    def test_empty_chunk_rejected(self):
        with pytest.raises(SchemeError):
            ChunkAssignment(start=5, stop=5, worker_id=0, step=1)

    def test_negative_chunk_rejected(self):
        with pytest.raises(SchemeError):
            ChunkAssignment(start=5, stop=3, worker_id=0, step=1)


class TestSchedulerProtocol:
    def test_invalid_construction(self):
        with pytest.raises(SchemeError):
            ChunkScheduler(-1, 4)
        with pytest.raises(SchemeError):
            ChunkScheduler(10, 0)

    def test_zero_iterations_immediately_finished(self):
        sched = ChunkScheduler(0, 4)
        assert sched.finished
        assert sched.next_chunk(WorkerView(0)) is None

    def test_conservation(self):
        sched = ChunkScheduler(103, 4, k=10)
        chunks = list(drain(sched))
        assert sum(c.size for c in chunks) == 103
        assert sched.finished
        assert sched.remaining == 0

    def test_last_chunk_clipped(self):
        sched = ChunkScheduler(25, 4, k=10)
        sizes = [c.size for c in drain(sched)]
        assert sizes == [10, 10, 5]

    def test_steps_monotonic(self):
        sched = ChunkScheduler(10, 2, k=3)
        steps = [c.step for c in drain(sched)]
        assert steps == [1, 2, 3, 4]

    def test_intervals_are_contiguous_partition(self):
        sched = make("GSS", 500, 4)
        cursor = 0
        for chunk in drain(sched):
            assert chunk.start == cursor
            cursor = chunk.stop
        assert cursor == 500

    def test_exhausted_scheduler_returns_none_forever(self):
        sched = ChunkScheduler(5, 2, k=5)
        assert sched.next_chunk(WorkerView(0)) is not None
        assert sched.next_chunk(WorkerView(1)) is None
        assert sched.next_chunk(WorkerView(1)) is None

    def test_drain_rejects_empty_cycle(self):
        sched = ChunkScheduler(5, 2)
        with pytest.raises(SchemeError):
            list(drain(sched, []))

    def test_drain_round_robin_assignment(self):
        sched = ChunkScheduler(6, 3, k=1)
        workers = [c.worker_id for c in drain(sched)]
        assert workers == [0, 1, 2, 0, 1, 2]
