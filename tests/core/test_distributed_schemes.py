"""Tests for the distributed schemes (paper Sec. 3.1 and 6)."""

from __future__ import annotations

import pytest

from repro.core import (
    IMPROVED_ACP,
    AcpModel,
    SchemeError,
    WorkerView,
    drain,
    make,
)

#: A 2-fast + 2-slow worker set under the improved ACP model
#: (V = 3 -> A = 30; V = 1 -> A = 10).
HETERO = [
    WorkerView(0, virtual_power=3.0, acp=30),
    WorkerView(1, virtual_power=3.0, acp=30),
    WorkerView(2, virtual_power=1.0, acp=10),
    WorkerView(3, virtual_power=1.0, acp=10),
]


def hetero_sizes(name, total=1000, **kw):
    sched = make(name, total, 4, **kw)
    for view in HETERO:
        sched.observe_acp(view.worker_id, view.acp)
    out: dict[int, list[int]] = {v.worker_id: [] for v in HETERO}
    i = 0
    while True:
        view = HETERO[i % 4]
        chunk = sched.next_chunk(view)
        if chunk is None:
            break
        out[view.worker_id].append(chunk.size)
        i += 1
    return out


@pytest.mark.parametrize("name", ["DTSS", "DFSS", "DFISS", "DTFSS"])
class TestCommonDistributedBehaviour:
    def test_conservation(self, name):
        per = hetero_sizes(name)
        assert sum(sum(v) for v in per.values()) == 1000

    def test_fast_workers_get_larger_chunks(self, name):
        per = hetero_sizes(name)
        # First-chunk comparison: a PE with 3x the power gets ~3x the
        # chunk (exact modulo rounding).
        fast_first, slow_first = per[0][0], per[2][0]
        assert fast_first > 2 * slow_first

    def test_flag(self, name):
        assert make(name, 100, 4).distributed is True

    def test_uniform_workers_first_round(self, name):
        sched = make(name, 1000, 4)
        first = [
            sched.next_chunk(WorkerView(i)).size for i in range(4)
        ]
        if name == "DTSS":
            # DTSS is not staged: consecutive requests walk down the
            # trapezoid even within the first round.
            assert all(a > b for a, b in zip(first, first[1:]))
        else:
            # Staged schemes give every equal-power PE the same
            # stage-1 chunk (modulo rounding).
            assert max(first) - min(first) <= 1


class TestDTSS:
    def test_chunk_formula_first_requests(self):
        # I=1000, A=80 (4 x A_i=20): F=floor(1000/160)=6, N=285,
        # D=5/284.  First request from a=20:
        # C = 20 * (6 - D*(0 + 9.5)).
        views = [WorkerView(i, virtual_power=2.0, acp=20)
                 for i in range(4)]
        sched = make("DTSS", 1000, 4)
        for v in views:
            sched.observe_acp(v.worker_id, v.acp)
        first = sched.next_chunk(views[0]).size
        d = 5 / 284
        assert first == int(20 * (6 - d * 9.5))

    def test_chunks_decrease_with_served_acp(self):
        per = hetero_sizes("DTSS")
        fast = per[0]
        assert all(a >= b for a, b in zip(fast, fast[1:]))

    def test_rederivation_on_load_change(self):
        sched = make("DTSS", 10_000, 4)
        for v in HETERO:
            sched.observe_acp(v.worker_id, v.acp)
        sched.next_chunk(HETERO[0])
        assert sched.rederivations == 0
        # More than half the ACPs change -> re-derive over remaining.
        for wid in (0, 1, 2):
            sched.observe_acp(wid, 5)
        sched.next_chunk(WorkerView(3, acp=10))
        assert sched.rederivations == 1

    def test_no_rederivation_for_minority_change(self):
        sched = make("DTSS", 10_000, 4)
        for v in HETERO:
            sched.observe_acp(v.worker_id, v.acp)
        sched.next_chunk(HETERO[0])
        sched.observe_acp(0, 5)  # one of four changed
        sched.next_chunk(HETERO[1])
        assert sched.rederivations == 0

    def test_custom_acp_model(self):
        model = AcpModel(scale=100)
        sched = make("DTSS", 1000, 2, acp_model=model)
        assert sched.acp_model is model


class TestDFSS:
    def test_stage_totals_halve(self):
        sched = make("DFSS", 1000, 4)
        for v in HETERO:
            sched.observe_acp(v.worker_id, v.acp)
        sched.next_chunk(HETERO[0])
        totals = sched._stage_totals
        assert totals[0] == 500
        assert totals[1] == 250
        assert sum(totals) == 1000

    def test_share_split(self):
        per = hetero_sizes("DFSS")
        # Stage 1 = 500; fast share = 500*30/80 = 187.5 -> 188/187.
        assert per[0][0] in (187, 188)
        assert per[2][0] in (62, 63)


class TestDFISS:
    def test_stage_totals(self):
        sched = make("DFISS", 1000, 4)
        for v in HETERO:
            sched.observe_acp(v.worker_id, v.acp)
        sched.next_chunk(HETERO[0])
        totals = sched._stage_totals
        # SC_0 = 1000/5 = 200; B = ceil(800/6) = 134; final = exact.
        assert totals[0] == 200
        assert totals[1] == 334
        assert totals[2] == 1000 - 200 - 334

    def test_alternate_sigma(self):
        per = hetero_sizes("DFISS", stages=4)
        assert sum(sum(v) for v in per.values()) == 1000

    def test_invalid_parameters(self):
        with pytest.raises(SchemeError):
            make("DFISS", 1000, 4, stages=1)
        with pytest.raises(SchemeError):
            make("DFISS", 1000, 4, stages=3, x=2)


class TestDTFSS:
    def test_stage_totals_decrease(self):
        sched = make("DTFSS", 1000, 4)
        for v in HETERO:
            sched.observe_acp(v.worker_id, v.acp)
        sched.next_chunk(HETERO[0])
        totals = sched._stage_totals
        assert all(a >= b for a, b in zip(totals, totals[1:]))
        assert sum(totals) == 1000

    def test_first_stage_matches_dtss_block(self):
        # DTFSS stage 1 total == what DTSS would hand one PE of power A.
        sched = make("DTFSS", 1000, 4)
        for v in HETERO:
            sched.observe_acp(v.worker_id, v.acp)
        sched.next_chunk(HETERO[0])
        a = 80
        f = sched.params.first
        d = sched.params.decrement
        import math

        assert sched._stage_totals[0] == math.floor(
            a * (f - d * (a - 1) / 2.0)
        )


class TestAcpPlumbing:
    def test_observe_acp_validation(self):
        sched = make("DTSS", 100, 2)
        with pytest.raises(SchemeError):
            sched.observe_acp(0, -1)

    def test_view_acp_overrides_stored(self):
        sched = make("DTSS", 1000, 2)
        sched.observe_acp(0, 10)
        sched.observe_acp(1, 10)
        chunk = sched.next_chunk(WorkerView(0, acp=40))
        # The fresh report (40 of 50 total... re-registered) is used.
        assert chunk is not None
        assert sched._acps[0] == 40

    def test_unregistered_workers_default(self):
        # Analytical use without an engine still works (V=Q=1 default).
        sched = make("DTSS", 100, 4)
        chunks = list(drain(sched))
        assert sum(c.size for c in chunks) == 100
