"""Scheme invariants under *arbitrary* request interleavings.

The analytic drain is round-robin; real engines issue requests in
completion order, which can be arbitrarily skewed (a fast PE may make
ten requests between two requests of a slow one).  Every scheme must
conserve the loop and stay positive under any interleaving -- this is
the property that the stage-ladder redesign exists to uphold.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WorkerView, make

ALL_SCHEMES = [
    "S", "SS", "GSS", "TSS", "FSS", "FISS", "TFSS", "WF",
    "DTSS", "DFSS", "DFISS", "DTFSS",
]


def drain_interleaved(scheduler, workers, seed):
    """Exhaust the scheduler with a seeded random requester order."""
    rng = random.Random(seed)
    views = [WorkerView(i) for i in range(workers)]
    chunks = []
    while not scheduler.finished:
        chunk = scheduler.next_chunk(rng.choice(views))
        if chunk is None:
            break
        chunks.append(chunk)
    return chunks


@given(
    st.sampled_from(ALL_SCHEMES),
    st.integers(min_value=0, max_value=2000),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=200, deadline=None)
def test_conservation_under_random_interleaving(
    name, total, workers, seed
):
    scheduler = make(name, total, workers)
    chunks = drain_interleaved(scheduler, workers, seed)
    assert sum(c.size for c in chunks) == total
    assert all(c.size >= 1 for c in chunks)
    cursor = 0
    for c in chunks:
        assert c.start == cursor
        cursor = c.stop


@given(
    st.sampled_from(["FSS", "FISS", "TFSS", "WF"]),
    st.integers(min_value=100, max_value=3000),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=200),
)
@settings(max_examples=100, deadline=None)
def test_staged_ladder_immune_to_hog(name, total, workers, seed):
    """One worker issuing many requests up front must not disturb the
    stage chunks later workers receive (the per-worker ladder
    property)."""
    hog_first = make(name, total, workers)
    hog = WorkerView(0)
    # Hog takes five chunks before anyone else shows up.
    for _ in range(5):
        if hog_first.finished:
            break
        hog_first.next_chunk(hog)
    late_chunk = (
        hog_first.next_chunk(WorkerView(1))
        if not hog_first.finished
        else None
    )
    fresh = make(name, total, workers)
    first_chunk = None
    if not fresh.finished:
        fresh.next_chunk(hog)  # stage-1 reference
        first_chunk = fresh.next_chunk(WorkerView(1))
    if late_chunk is not None and first_chunk is not None:
        # Worker 1's first chunk is its own stage 1 either way (it may
        # be clipped by remaining iterations, never inflated).
        assert late_chunk.size <= first_chunk.size


@given(
    st.integers(min_value=100, max_value=2000),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_distributed_interleaving_with_mixed_acp(total, workers, seed):
    rng = random.Random(seed)
    scheduler = make("DTSS", total, workers)
    views = []
    for wid in range(workers):
        acp = rng.randint(1, 40)
        scheduler.observe_acp(wid, acp)
        views.append(WorkerView(wid, acp=acp))
    assigned = 0
    while not scheduler.finished:
        chunk = scheduler.next_chunk(rng.choice(views))
        if chunk is None:
            break
        assigned += chunk.size
    assert assigned == total
