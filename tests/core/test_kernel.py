"""Kernel/ladder equivalence proof (hypothesis).

``repro.core.kernel.evaluate_ladder`` is the single vectorized source
of truth for every pure chunk ladder: the analytic fast path, the
decentral counter engine, and ``repro.verify.replay_cut_points`` all
consume it.  These tests pin the kernel against the slowest, most
literal reference we have -- a step-by-step scheduler replay -- for
every registered pure scheme over random ``(N, P)``, including the
degenerate shapes (``P=1``, ``N<P``, ``N=0``, inline parameters).

The replay reference deliberately passes a *Scheduler instance* to
``replay_cut_points``: string schemes short-circuit through the very
kernel under test (see ``repro.verify``), which would make the
comparison circular.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import drain, make
from repro.core.kernel import (
    CALCULATORS,
    SchemeError,
    evaluate_ladder,
    make_calculator,
)
from repro.verify import replay_cut_points

#: Spellings that exercise the inline-parameter parser as well as the
#: bare registry names.
PURE_SCHEMES = sorted(CALCULATORS) + ["CSS(7)", "CSS(32)", "GSS(4)"]

sizes_and_workers = st.tuples(
    st.integers(min_value=0, max_value=3000),
    st.integers(min_value=1, max_value=16),
)


@st.composite
def kernel_case(draw):
    name = draw(st.sampled_from(PURE_SCHEMES))
    total, workers = draw(sizes_and_workers)
    return name, total, workers


@given(kernel_case())
@settings(max_examples=250, deadline=None)
def test_ladder_matches_step_by_step_replay(case):
    """Vectorized ladder boundaries == literal scheduler replay."""
    name, total, workers = case
    ladder = evaluate_ladder(name, total, workers)
    # Scheduler instance => replay_cut_points takes the slow
    # step-by-step path (the str spelling would route back through the
    # kernel and prove nothing).
    reference = replay_cut_points(make(name, total, workers),
                                  total, workers)
    assert ladder.cut_points() == reference


@given(kernel_case())
@settings(max_examples=250, deadline=None)
def test_ladder_sizes_match_drained_scheduler(case):
    """Chunk-by-chunk sizes (not just boundaries) match a drain."""
    name, total, workers = case
    ladder = evaluate_ladder(name, total, workers)
    chunks = list(drain(make(name, total, workers)))
    assert [int(s) for s in ladder.sizes] == [c.size for c in chunks]
    assert [int(s) for s in ladder.starts] == [c.start for c in chunks]
    assert [int(s) for s in ladder.stops] == [c.stop for c in chunks]


@given(kernel_case())
@settings(max_examples=250, deadline=None)
def test_ladder_tiles_the_loop(case):
    """Invariants: sizes >= 1, intervals tile [0, N) in order."""
    name, total, workers = case
    ladder = evaluate_ladder(name, total, workers)
    assert int(ladder.sizes.sum()) == total
    if ladder.n_chunks:
        assert int(ladder.sizes.min()) >= 1
        assert int(ladder.starts[0]) == 0
        assert int(ladder.stops[-1]) == total
        assert np.array_equal(ladder.starts[1:], ladder.stops[:-1])


@pytest.mark.parametrize("name", sorted(CALCULATORS))
@pytest.mark.parametrize(
    "total,workers",
    [
        (0, 3),     # empty loop
        (1, 1),     # single iteration, single worker
        (5, 1),     # P=1 collapses every scheme to few fat chunks
        (3, 8),     # N < P: some workers never get a chunk
        (17, 17),   # N == P
        (1000, 7),  # long ladder with an uneven tail
    ],
)
def test_degenerate_shapes(name, total, workers):
    ladder = evaluate_ladder(name, total, workers)
    reference = replay_cut_points(make(name, total, workers),
                                  total, workers)
    assert ladder.cut_points() == reference
    assert int(ladder.sizes.sum()) == total


def test_verify_shortcut_equals_slow_replay():
    """The str-scheme shortcut in replay_cut_points is not circularly
    trusted: pin it against the instance (slow) path explicitly."""
    for name in PURE_SCHEMES:
        for total, workers in [(100, 4), (0, 3), (3, 8), (1000, 7)]:
            fast = replay_cut_points(name, total, workers)
            slow = replay_cut_points(make(name, total, workers),
                                     total, workers)
            assert fast == slow, (name, total, workers)


def test_custom_order_bypasses_kernel():
    """A caller-supplied service order must never hit the kernel (the
    ladder has no notion of request interleaving) -- reversed order on
    an order-sensitive scheme differs from the kernel ladder."""
    total, workers = 100, 4
    reversed_order = list(range(workers))[::-1]
    via_order = replay_cut_points("FSS", total, workers,
                                  order=reversed_order * total)
    assert via_order is not None  # replay completed step-by-step


def test_impure_schemes_rejected():
    for name in ["S", "BC", "WF", "DTSS", "DFSS", "DFISS", "DTFSS"]:
        with pytest.raises(SchemeError):
            make_calculator(name, 100, 4)
