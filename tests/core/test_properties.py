"""Property-based tests (hypothesis) on scheme invariants.

Every scheme, for any loop size and worker count, must:

* conserve iterations (chunks partition ``[0, I)`` exactly, in order);
* emit only positive chunk sizes;
* terminate within ``I`` scheduling steps;
* be deterministic (same inputs -> same trace).

These are the invariants the execution engines rely on; a scheme bug
that breaks any of them corrupts results silently, hence the heavy
artillery.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WorkerView, drain, make
from repro.core.acp import AcpModel

ALL_SCHEMES = [
    "S", "SS", "GSS", "TSS", "FSS", "FISS", "TFSS", "WF",
    "DTSS", "DFSS", "DFISS", "DTFSS",
]

sizes_and_workers = st.tuples(
    st.integers(min_value=0, max_value=3000),
    st.integers(min_value=1, max_value=16),
)


@st.composite
def scheme_instance(draw):
    name = draw(st.sampled_from(ALL_SCHEMES))
    total, workers = draw(sizes_and_workers)
    return name, total, workers


@given(scheme_instance())
@settings(max_examples=200, deadline=None)
def test_conservation_and_positivity(case):
    name, total, workers = case
    chunks = list(drain(make(name, total, workers)))
    assert sum(c.size for c in chunks) == total
    assert all(c.size >= 1 for c in chunks)
    cursor = 0
    for c in chunks:
        assert c.start == cursor
        cursor = c.stop
    assert len(chunks) <= max(total, 1)


@given(scheme_instance())
@settings(max_examples=100, deadline=None)
def test_determinism(case):
    name, total, workers = case
    first = [c.size for c in drain(make(name, total, workers))]
    second = [c.size for c in drain(make(name, total, workers))]
    assert first == second


@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_css_chunk_count(total, workers, k):
    chunks = list(drain(make("CSS", total, workers, k=k)))
    assert len(chunks) == -(-total // k)  # ceil division


@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_gss_chunks_never_increase(total, workers):
    sizes = [c.size for c in drain(make("GSS", total, workers))]
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))


@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_tss_executable_chunks_never_increase(total, workers):
    sizes = [c.size for c in drain(make("TSS", total, workers))]
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))


@given(
    st.integers(min_value=1, max_value=3000),
    st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=100, deadline=None)
def test_weighted_static_conserves(total, weights):
    sched = make("S", total, len(weights), weights=weights)
    chunks = list(drain(sched))
    assert sum(c.size for c in chunks) == total


@given(
    st.integers(min_value=0, max_value=2000),
    st.lists(
        st.tuples(
            st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
            st.integers(min_value=1, max_value=6),
        ),
        min_size=1,
        max_size=10,
    ),
    st.sampled_from(["DTSS", "DFSS", "DFISS", "DTFSS"]),
)
@settings(max_examples=150, deadline=None)
def test_distributed_conserve_under_heterogeneous_acp(
    total, profile, name
):
    model = AcpModel(scale=10)
    workers = len(profile)
    sched = make(name, total, workers, acp_model=model)
    views = []
    for wid, (vp, q) in enumerate(profile):
        acp = max(1, model.acp(vp, q))
        sched.observe_acp(wid, acp)
        views.append(WorkerView(wid, virtual_power=vp, run_queue=q, acp=acp))
    chunks = list(drain(sched, views))
    assert sum(c.size for c in chunks) == total
    assert all(c.size >= 1 for c in chunks)


@given(
    st.integers(min_value=1, max_value=2000),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=200),
)
@settings(max_examples=100, deadline=None)
def test_dtss_survives_acp_churn(total, workers, churn_seed):
    """Mid-run ACP changes (re-derivations) never break conservation."""
    import random

    rng = random.Random(churn_seed)
    sched = make("DTSS", total, workers)
    for wid in range(workers):
        sched.observe_acp(wid, rng.randint(1, 40))
    assigned = 0
    guard = 0
    while not sched.finished:
        wid = rng.randrange(workers)
        if rng.random() < 0.3:
            sched.observe_acp(wid, rng.randint(1, 40))
        chunk = sched.next_chunk(
            WorkerView(wid, acp=rng.randint(1, 40))
        )
        if chunk is None:
            break
        assigned += chunk.size
        guard += 1
        assert guard <= 4 * total + workers
    assert assigned == total


@given(scheme_instance())
@settings(max_examples=100, deadline=None)
def test_drain_trace_passes_coverage_audit(case):
    """Any drained scheme trace must tile [0, I) exactly once --
    the same invariant the trace auditor enforces on full runs."""
    from repro.verify import audit_chunks

    name, total, workers = case
    chunks = list(drain(make(name, total, workers)))
    audit_chunks(
        [(c.worker_id, c.start, c.stop) for c in chunks], total
    ).raise_if_failed()


@given(
    st.sampled_from(["SS", "CSS", "GSS", "TSS"]),
    st.integers(min_value=1, max_value=2000),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=100, deadline=None)
def test_order_invariant_cut_points(name, total, workers, seed):
    """The whitelisted schemes must produce identical interval
    boundaries for *any* request order -- the property the auditor's
    policy-conformance replay relies on under chaos requeues."""
    import random

    from repro.verify import replay_cut_points

    rng = random.Random(seed)
    order = [rng.randrange(workers) for _ in range(3 * workers + 1)]
    reference = replay_cut_points(name, total, workers)
    shuffled = replay_cut_points(name, total, workers, order=order)
    assert reference == shuffled
