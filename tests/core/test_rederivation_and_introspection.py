"""Focused tests: staged re-derivation resets and scheme introspection."""

from __future__ import annotations

import pytest

from repro.core import WorkerView, make


class TestStagedRederivation:
    """The "more than half the ACPs changed" rule for staged schemes
    must replan stages over the *remaining* iterations and reset every
    worker's ladder (paper Sec. 3.1 step 2c / Sec. 6)."""

    def _prime(self, name, total=10_000, workers=4, acp=10):
        sched = make(name, total, workers)
        for wid in range(workers):
            sched.observe_acp(wid, acp)
        return sched

    @pytest.mark.parametrize("name", ["DFSS", "DFISS", "DTFSS"])
    def test_rederivation_resets_ladders(self, name):
        sched = self._prime(name)
        # Worker 0 walks two stages.
        first = sched.next_chunk(WorkerView(0, acp=10)).size
        sched.next_chunk(WorkerView(0, acp=10))
        # Majority ACP change -> replan over remaining.
        for wid in (0, 1, 2):
            sched.observe_acp(wid, 20)
        chunk = sched.next_chunk(WorkerView(3, acp=10))
        assert sched.rederivations == 1
        # Worker 3's ladder restarted at stage 1 of the new plan.
        assert sched._worker_stage[3] == 1
        assert chunk is not None
        # And the plan now covers only what remains.
        assert sum(sched._stage_totals) <= sched.remaining + chunk.size

    @pytest.mark.parametrize("name", ["DFSS", "DFISS", "DTFSS"])
    def test_rederivation_rescales_chunks_to_new_power(self, name):
        sched = self._prime(name)
        before = sched.next_chunk(WorkerView(0, acp=10)).size
        # Everyone's power collapses to 1/10th except worker 0's.
        for wid in (1, 2, 3):
            sched.observe_acp(wid, 1)
        after = sched.next_chunk(WorkerView(0, acp=10))
        assert sched.rederivations == 1
        # Worker 0 now holds 10/13 of the cluster power: its stage-1
        # chunk share grows accordingly.
        assert after.size > before * 1.5

    def test_conservation_across_many_rederivations(self):
        sched = self._prime("DFISS", total=5000)
        import random

        rng = random.Random(7)
        assigned = 0
        while not sched.finished:
            wid = rng.randrange(4)
            if rng.random() < 0.5:
                for w in range(3):
                    sched.observe_acp(w, rng.randint(1, 30))
            chunk = sched.next_chunk(
                WorkerView(wid, acp=rng.randint(1, 30))
            )
            if chunk is None:
                break
            assigned += chunk.size
        assert assigned == 5000
        assert sched.rederivations >= 1


class TestDescribe:
    def test_simple_scheme(self):
        info = make("FSS", 1000, 4).describe()
        assert info["name"] == "FSS"
        assert info["class"] == "FactoringScheduler"
        assert info["distributed"] is False
        assert info["params"]["alpha"] == 2.0
        assert info["params"]["rounding"] == "half-even"

    def test_distributed_scheme(self):
        info = make("DFISS", 1000, 4).describe()
        assert info["distributed"] is True
        assert info["params"]["stages"] == 3

    def test_inline_parameter_reflected(self):
        info = make("CSS(32)", 1000, 4).describe()
        assert info["params"]["k"] == 32

    def test_private_state_excluded(self):
        info = make("GSS", 1000, 4).describe()
        assert not any(k.startswith("_") for k in info["params"])

    def test_schemes_cli(self, capsys):
        from repro.experiments.runner import main

        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "DistributedTrapezoidScheduler" in out
        assert "half-even" in out
