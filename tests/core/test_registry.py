"""Tests for the scheme registry (repro.core.registry)."""

from __future__ import annotations

import pytest

from repro.core import (
    SCHEMES,
    SchemeError,
    Scheduler,
    WorkerView,
    make,
    make_many,
    names,
    register,
)


class TestMake:
    def test_all_registered_names_construct(self):
        for name in names():
            sched = make(name, 100, 4)
            assert isinstance(sched, Scheduler)
            assert sched.total == 100

    def test_case_insensitive(self):
        assert make("tss", 100, 4).name == "TSS"
        assert make("dFiSs", 100, 4).name == "DFISS"

    def test_unknown_scheme(self):
        with pytest.raises(SchemeError):
            make("XYZ", 100, 4)

    def test_inline_parameters(self):
        assert make("CSS(16)", 100, 4).k == 16
        assert make("GSS(8)", 100, 4).min_chunk == 8
        assert make("BC(4)", 100, 4).block == 4

    def test_inline_parameter_on_wrong_scheme(self):
        with pytest.raises(SchemeError):
            make("TSS(5)", 100, 4)

    def test_kwargs_forwarded(self):
        assert make("FSS", 100, 4, alpha=3.0).alpha == 3.0

    def test_explicit_kwarg_beats_inline_default(self):
        sched = make("CSS(16)", 100, 4)
        assert sched.k == 16


class TestMakeMany:
    def test_fresh_instances(self):
        batch = make_many(["TSS", "FSS"], 100, 4)
        assert set(batch) == {"TSS", "FSS"}
        assert batch["TSS"] is not make("TSS", 100, 4)


class TestRegister:
    def test_custom_scheme(self):
        class Halver(Scheduler):
            name = "HALVE"

            def _chunk_size(self, worker: WorkerView) -> int:
                return max(1, self.remaining // 2)

        register("halve", Halver)
        try:
            sched = make("HALVE", 100, 2)
            sizes = []
            while not sched.finished:
                sizes.append(sched.next_chunk(WorkerView(0)).size)
            assert sizes[0] == 50
            assert sum(sizes) == 100
        finally:
            SCHEMES.pop("HALVE", None)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemeError):
            register("  ", Scheduler)
