"""Exact-value tests for the simple schemes (paper Sec. 2 + Table 1)."""

from __future__ import annotations

import pytest

from repro.core import (
    SchemeError,
    WorkerView,
    drain,
    make,
    nominal_tss_chunks,
    tfss_stage_chunks,
)
from repro.core.trapezoid import TrapezoidParams


def sizes(name, total=1000, workers=4, **kw):
    return [c.size for c in drain(make(name, total, workers, **kw))]


class TestStatic:
    def test_paper_row(self):
        assert sizes("S") == [250, 250, 250, 250]

    def test_uneven_division(self):
        assert sizes("S", total=10, workers=4) == [3, 3, 2, 2]

    def test_weighted_blocks(self):
        got = sizes("S", weights=[0.5, 0.5, 1.0, 2.0])
        assert got == [125, 125, 250, 500]

    def test_weight_count_mismatch(self):
        with pytest.raises(SchemeError):
            make("S", 100, 4, weights=[1.0, 2.0])

    def test_fewer_iterations_than_workers(self):
        got = sizes("S", total=2, workers=4)
        assert sum(got) == 2


class TestPureAndChunk:
    def test_pure_is_all_ones(self):
        assert sizes("SS", total=7) == [1] * 7

    def test_css_constant(self):
        assert sizes("CSS", k=40) == [40] * 25

    def test_css_inline_parameter(self):
        assert sizes("CSS(100)") == [100] * 10

    def test_css_invalid_k(self):
        with pytest.raises(SchemeError):
            make("CSS", 100, 4, k=0)

    def test_names(self):
        assert make("SS", 10, 2).name == "SS"
        assert make("CSS(7)", 10, 2).name == "CSS(7)"


class TestGuided:
    PAPER = [250, 188, 141, 106, 79, 59, 45, 33, 25, 19, 14, 11,
             8, 6, 4, 3, 3, 2, 1, 1, 1, 1]

    def test_paper_row(self):
        assert sizes("GSS") == self.PAPER

    def test_gss_k_bounds_minimum(self):
        got = sizes("GSS", min_chunk=10)
        assert min(got[:-1]) >= 10  # the clipped tail may be smaller
        assert sum(got) == 1000

    def test_gss_decreasing(self):
        got = sizes("GSS")
        assert all(a >= b for a, b in zip(got, got[1:]))

    def test_single_worker_takes_everything(self):
        assert sizes("GSS", workers=1) == [1000]


class TestTrapezoid:
    PAPER_NOMINAL = [125, 117, 109, 101, 93, 85, 77, 69, 61, 53,
                     45, 37, 29, 21, 13, 5]

    def test_paper_nominal_row(self):
        assert nominal_tss_chunks(1000, 4) == self.PAPER_NOMINAL

    def test_nominal_row_overshoots_total(self):
        # The paper's printed row sums to 1040 > 1000; this quirk is
        # part of the record (see EXPERIMENTS.md).
        assert sum(self.PAPER_NOMINAL) == 1040

    def test_executable_sequence_conserves(self):
        got = sizes("TSS")
        assert sum(got) == 1000
        assert got == self.PAPER_NOMINAL[:12] + [28]

    def test_derived_parameters(self):
        params = TrapezoidParams.derive(1000, 4)
        assert (params.first, params.last) == (125, 1)
        assert params.steps == 15
        assert params.decrement == 8.0

    def test_user_supplied_first_last(self):
        got = sizes("TSS", first=100, last=20)
        assert got[0] == 100
        assert sum(got) == 1000

    def test_tiny_loop_degenerates(self):
        got = sizes("TSS", total=3, workers=4)
        assert sum(got) == 3

    def test_fractional_decrement_mode(self):
        params = TrapezoidParams.derive(
            1000, 12, integer_decrement=False
        )
        # I=1000, A=12: F=41, N=47, D=40/46 -- would floor to 0.
        assert 0 < params.decrement < 1

    def test_invalid_last(self):
        with pytest.raises(SchemeError):
            TrapezoidParams.derive(100, 4, last=0)


class TestFactoring:
    PAPER = ([125] * 4 + [62] * 4 + [32] * 4 + [16] * 4 + [8] * 4
             + [4] * 4 + [2] * 4 + [1] * 4)

    def test_paper_row_half_even(self):
        assert sizes("FSS") == self.PAPER

    def test_ceil_rounding_differs(self):
        got = sizes("FSS", rounding="ceil")
        assert got[4] == 63  # ceil(500/8), vs the paper's 62
        assert sum(got) == 1000

    def test_floor_rounding(self):
        got = sizes("FSS", rounding="floor")
        assert sum(got) == 1000

    def test_unknown_rounding_rejected(self):
        with pytest.raises(SchemeError):
            make("FSS", 100, 4, rounding="nearest")

    def test_alpha_must_exceed_one(self):
        with pytest.raises(SchemeError):
            make("FSS", 100, 4, alpha=1.0)

    def test_alpha_3_shrinks_faster(self):
        got = sizes("FSS", alpha=3.0)
        assert got[0] == round(1000 / 12)
        assert sum(got) == 1000

    def test_stage_attribution(self):
        chunks = list(drain(make("FSS", 1000, 4)))
        assert [c.stage for c in chunks[:8]] == [1] * 4 + [2] * 4


class TestFixedIncrease:
    def test_paper_row(self):
        assert sizes("FISS") == [50] * 4 + [83] * 4 + [117] * 4

    def test_increasing_until_final(self):
        got = sizes("FISS", total=5000, workers=4)
        assert got[0] < got[4] < got[8]
        assert sum(got) == 5000

    def test_sigma_4(self):
        got = sizes("FISS", stages=4)
        assert sum(got) == 1000

    def test_invalid_sigma(self):
        with pytest.raises(SchemeError):
            make("FISS", 1000, 4, stages=1)

    def test_x_must_exceed_sigma(self):
        with pytest.raises(SchemeError):
            make("FISS", 1000, 4, stages=3, x=3)

    def test_inline_parameter_sets_stages(self):
        sched = make("FISS(5)", 1000, 4)
        assert sched.stages == 5


class TestTFSS:
    def test_paper_stage_chunks(self):
        assert tfss_stage_chunks(1000, 4) == [113, 81, 49, 17]

    def test_paper_example_grouping(self):
        # 113 = (125+117+109+101)/4 etc. -- Example 2 of the paper.
        tss = nominal_tss_chunks(1000, 4)
        expected = [sum(tss[i:i + 4]) // 4 for i in range(0, 16, 4)]
        assert tfss_stage_chunks(1000, 4) == expected

    def test_executable_conserves_and_clips(self):
        got = sizes("TFSS")
        assert sum(got) == 1000
        # Nominal plan over-covers; the final chunk is clipped.
        assert got[:13] == [113] * 4 + [81] * 4 + [49] * 4 + [17]

    def test_decreasing_stages(self):
        stages = tfss_stage_chunks(4000, 8)
        assert all(a >= b for a, b in zip(stages, stages[1:]))


class TestWeightedFactoring:
    def test_equal_weights_match_fss_totals(self):
        got = sizes("WF")
        assert sum(got) == 1000
        assert got[0] == 125

    def test_weighted_shares(self):
        got = sizes("WF", weights=[1.0, 1.0, 1.0, 3.0])
        # Worker 3 gets a triple share of the 500-iteration stage.
        assert got[3] == 250
        assert got[0] == got[1] == got[2] == 83
        assert sum(got) == 1000

    def test_bad_weights(self):
        with pytest.raises(SchemeError):
            make("WF", 100, 4, weights=[1.0, -1.0, 1.0, 1.0])
        with pytest.raises(SchemeError):
            make("WF", 100, 4, weights=[1.0])


class TestLadderSemantics:
    """Per-worker stage progression under uneven request interleaving."""

    def test_fast_worker_walks_its_own_ladder(self):
        sched = make("FSS", 1000, 4)
        fast = WorkerView(0)
        # Worker 0 requests three times before anyone else.
        got = [sched.next_chunk(fast).size for _ in range(3)]
        assert got == [125, 62, 32]

    def test_slow_worker_still_gets_stage1(self):
        sched = make("FSS", 1000, 4)
        for _ in range(3):
            sched.next_chunk(WorkerView(0))
        # Worker 1's first request is still its own stage 1.
        assert sched.next_chunk(WorkerView(1)).size == 125

    def test_fiss_overflow_requests_get_small_tail(self):
        sched = make("FISS", 1000, 4)
        w = WorkerView(0)
        ladder = [sched.next_chunk(w).size for _ in range(3)]
        assert ladder == [50, 83, 117]
        # Beyond the plan: never the big final rung again.
        tail = sched.next_chunk(w)
        assert tail.size < 117
