"""Tests for Tree Scheduling combinatorics (repro.core.tree)."""

from __future__ import annotations

import pytest

from repro.core import (
    SchemeError,
    TreePartition,
    partner_order,
    steal_split,
)


class TestPartnerOrder:
    def test_power_of_two_pairs(self):
        assert partner_order(0, 8) == [1, 2, 4, 3, 5, 6, 7]

    def test_every_partner_appears_once(self):
        for p in (1, 2, 3, 5, 8, 13):
            for i in range(p):
                partners = partner_order(i, p)
                assert sorted(partners) == [
                    j for j in range(p) if j != i
                ]

    def test_symmetry_at_level_zero(self):
        # XOR pairing is symmetric: 0's first partner is 1 and vice versa.
        assert partner_order(0, 8)[0] == 1
        assert partner_order(1, 8)[0] == 0

    def test_single_worker_has_no_partners(self):
        assert partner_order(0, 1) == []

    def test_out_of_range_rejected(self):
        with pytest.raises(SchemeError):
            partner_order(5, 4)
        with pytest.raises(SchemeError):
            partner_order(0, 0)


class TestStealSplit:
    def test_even_split(self):
        kept, stolen = steal_split(0, 10)
        assert kept == (0, 5)
        assert stolen == (5, 10)

    def test_odd_split_victim_keeps_extra(self):
        kept, stolen = steal_split(0, 7)
        assert kept == (0, 4)
        assert stolen == (4, 7)

    def test_minimum_size(self):
        with pytest.raises(SchemeError):
            steal_split(3, 4)

    def test_offsets_preserved(self):
        kept, stolen = steal_split(100, 110)
        assert kept[0] == 100 and stolen[1] == 110
        assert kept[1] == stolen[0]


class TestTreePartition:
    def test_even_blocks_cover_loop(self):
        blocks = TreePartition.even(100, 3).blocks()
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 100
        sizes = [hi - lo for lo, hi in blocks]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_weighted_blocks_proportional(self):
        part = TreePartition.weighted(1000, [3.0, 3.0, 1.0, 1.0])
        sizes = [hi - lo for lo, hi in part.blocks()]
        assert sizes == [375, 375, 125, 125]

    def test_blocks_are_contiguous(self):
        blocks = TreePartition.weighted(997, [1.0, 2.0, 3.0]).blocks()
        for (a, b), (c, _d) in zip(blocks, blocks[1:]):
            assert b == c

    def test_empty_loop(self):
        blocks = TreePartition.even(0, 4).blocks()
        assert all(hi == lo for lo, hi in blocks)

    def test_weight_count_mismatch(self):
        with pytest.raises(SchemeError):
            TreePartition(total=10, workers=3, weights=(1.0, 2.0))
