"""Unit tests for the pure chunk calculators."""

from __future__ import annotations

import pickle

import pytest

from repro.core import drain, make
from repro.core.base import SchemeError
from repro.decentral import (
    CALCULATORS,
    DECENTRAL_SCHEMES,
    chunk_size,
    make_calculator,
)
from repro.verify import replay_cut_points

GRID = [(0, 3), (1, 1), (1, 4), (7, 3), (64, 4), (100, 7), (1000, 4),
        (1000, 9), (2048, 8), (5, 9)]


class TestCalculatorGeometry:
    @pytest.mark.parametrize("scheme", DECENTRAL_SCHEMES)
    @pytest.mark.parametrize("total,p", GRID)
    def test_sizes_cover_the_loop_exactly(self, scheme, total, p):
        calc = make_calculator(scheme, total, p)
        sizes = calc.sizes()
        assert sum(sizes) == total
        assert all(s >= 1 for s in sizes)
        assert calc.n_chunks == len(sizes)

    @pytest.mark.parametrize("scheme", DECENTRAL_SCHEMES)
    @pytest.mark.parametrize("total,p", GRID)
    def test_intervals_are_contiguous(self, scheme, total, p):
        calc = make_calculator(scheme, total, p)
        cursor = 0
        for i in range(calc.n_chunks):
            start, stop = calc.interval(i)
            assert start == cursor
            assert stop > start
            cursor = stop
        assert cursor == total

    @pytest.mark.parametrize("scheme", DECENTRAL_SCHEMES)
    @pytest.mark.parametrize("total,p", GRID)
    def test_boundaries_match_replay(self, scheme, total, p):
        calc = make_calculator(scheme, total, p)
        assert calc.boundaries() == replay_cut_points(scheme, total, p)

    @pytest.mark.parametrize("scheme", DECENTRAL_SCHEMES)
    def test_sizes_match_master_drain(self, scheme):
        # Ordinal-by-ordinal, not just cut-point-set, equality with the
        # stateful scheduler under round-robin service.
        total, p = 1000, 4
        master = [c.size for c in drain(make(scheme, total, p))]
        assert make_calculator(scheme, total, p).sizes() == master

    @pytest.mark.parametrize("scheme", DECENTRAL_SCHEMES)
    def test_chunk_zero_after_exhaustion(self, scheme):
        calc = make_calculator(scheme, 50, 3)
        assert calc.chunk(50) == 0
        assert calc.chunk(51) == 0

    def test_negative_boundary_rejected(self):
        with pytest.raises(SchemeError):
            make_calculator("TSS", 100, 4).chunk(-1)

    def test_interval_beyond_loop_rejected(self):
        calc = make_calculator("CSS(10)", 100, 4)
        with pytest.raises(SchemeError):
            calc.interval(calc.n_chunks)

    def test_empty_loop(self):
        calc = make_calculator("GSS", 0, 4)
        assert calc.n_chunks == 0
        assert calc.boundaries() == frozenset()
        assert calc.sizes() == []


class TestStagedCalculators:
    def test_stage_of_follows_round_robin(self):
        calc = make_calculator("FSS", 1000, 4)
        for i in range(calc.n_chunks):
            assert calc.stage_of(i) == i // 4 + 1

    def test_stage_of_range_checked(self):
        calc = make_calculator("FSS", 1000, 4)
        with pytest.raises(SchemeError):
            calc.stage_of(calc.n_chunks)

    def test_fss_ladder_matches_scheduler_plan(self):
        from repro.core.factoring import FactoringScheduler

        ref = FactoringScheduler(1000, 4)
        calc = make_calculator("FSS", 1000, 4)
        assert list(calc.ladder) == [max(1, int(c)) for c in ref._ladder]


class TestFactoryAndParams:
    def test_inline_parameters(self):
        assert make_calculator("css(32)", 1000, 4).k == 32
        assert make_calculator("GSS(8)", 1000, 4).min_chunk == 8
        assert make_calculator("FISS(5)", 1000, 4).stages == 5

    def test_keyword_parameters(self):
        calc = make_calculator("TSS", 1000, 4, first=100, last=4)
        assert calc.params.first == 100
        assert calc.boundaries() == replay_cut_points(
            "TSS", 1000, 4, first=100, last=4
        )

    @pytest.mark.parametrize("name", ["S", "BC", "WF", "DTSS", "DFSS",
                                      "DFISS", "DTFSS"])
    def test_non_decentralizable_schemes_refused(self, name):
        with pytest.raises(SchemeError, match="no decentral form"):
            make_calculator(name, 1000, 4)

    def test_unknown_scheme_refused(self):
        with pytest.raises(SchemeError, match="unknown scheme"):
            make_calculator("NOPE", 1000, 4)

    def test_chunk_size_one_shot(self):
        assert chunk_size("CSS(25)", 0, 100, 4) == 25
        assert chunk_size("CSS(25)", 90, 100, 4) == 10  # final clip
        assert chunk_size("SS", 99, 100, 4) == 1

    def test_registry_and_calculators_agree_on_names(self):
        from repro.core import registry

        assert set(CALCULATORS) <= set(registry.SCHEMES)

    @pytest.mark.parametrize("scheme", DECENTRAL_SCHEMES)
    def test_calculators_pickle(self, scheme):
        calc = make_calculator(scheme, 500, 4)
        clone = pickle.loads(pickle.dumps(calc))
        assert clone.sizes() == calc.sizes()
