"""Property suite: pure calculators == master replay, for every scheme.

The load-bearing claim of the decentral substrate is that each
calculator's geometry is *identical* to what the stateful scheduler
would produce under round-robin service -- for any loop size, worker
count, and scheme parameters, including the remainder-heavy edges
(total < p, total == 0, final clipped chunk).  Hypothesis sweeps that
space; :func:`repro.verify.replay_cut_points` is the oracle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import drain, make
from repro.decentral import make_calculator
from repro.verify import replay_cut_points

totals = st.integers(min_value=0, max_value=700)
workers = st.integers(min_value=1, max_value=12)


def _assert_equivalent(scheme: str, total: int, p: int, **kwargs) -> None:
    calc = make_calculator(scheme, total, p, **kwargs)
    assert calc.boundaries() == replay_cut_points(
        scheme, total, p, **kwargs
    )
    sizes = calc.sizes()
    assert sum(sizes) == total
    # Ordinal-level agreement, stricter than the cut-point set.
    assert sizes == [c.size for c in drain(make(scheme, total, p, **kwargs))]


@settings(deadline=None)
@given(total=totals, p=workers)
def test_ss_matches_replay(total, p):
    _assert_equivalent("SS", total, p)


@settings(deadline=None)
@given(total=totals, p=workers, k=st.integers(min_value=1, max_value=64))
def test_css_matches_replay(total, p, k):
    _assert_equivalent("CSS", total, p, k=k)


@settings(deadline=None)
@given(total=totals, p=workers,
       min_chunk=st.integers(min_value=1, max_value=16))
def test_gss_matches_replay(total, p, min_chunk):
    _assert_equivalent("GSS", total, p, min_chunk=min_chunk)


@settings(deadline=None)
@given(total=totals, p=workers)
def test_tss_matches_replay(total, p):
    _assert_equivalent("TSS", total, p)


@settings(deadline=None)
@given(total=totals, p=workers,
       first=st.integers(min_value=1, max_value=200),
       last=st.integers(min_value=1, max_value=8))
def test_tss_with_explicit_params_matches_replay(total, p, first, last):
    first = max(first, last)
    _assert_equivalent("TSS", total, p, first=first, last=last)


@settings(deadline=None)
@given(total=totals, p=workers,
       alpha=st.sampled_from([1.5, 2.0, 3.0]))
def test_fss_matches_replay(total, p, alpha):
    _assert_equivalent("FSS", total, p, alpha=alpha)


@settings(deadline=None)
@given(total=totals, p=workers,
       stages=st.integers(min_value=2, max_value=6))
def test_fiss_matches_replay(total, p, stages):
    _assert_equivalent("FISS", total, p, stages=stages)


@settings(deadline=None)
@given(total=totals, p=workers)
def test_tfss_matches_replay(total, p):
    _assert_equivalent("TFSS", total, p)


@settings(deadline=None)
@given(p=workers, total=st.integers(min_value=0, max_value=15))
def test_tiny_loops_every_scheme(total, p):
    # total < p and total == 0: the remainder/last-chunk edge cases in
    # concentrated form.
    for scheme in ("SS", "CSS", "GSS", "TSS", "FSS", "FISS", "TFSS"):
        _assert_equivalent(scheme, total, p)
