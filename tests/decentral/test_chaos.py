"""Fault injection on the decentral substrate: sim and real SIGKILL."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    ChaosError,
    FaultPlan,
    MasterStall,
    MessageDelay,
    WorkerDeath,
    WorkerRestart,
)
from repro.decentral import REPAIR_LANE, run_decentral, simulate_decentral
from repro.simulation import SimulationError
from repro.verify import audit_run, audit_sim
from repro.workloads import SpinWorkload, UniformWorkload

from tests.conftest import make_cluster


@pytest.fixture(scope="module")
def spin_workload():
    return SpinWorkload(60, spins=50, veclen=4096)


@pytest.fixture(scope="module")
def spin_serial(spin_workload):
    return spin_workload.execute_serial()


class TestSimulatedChaos:
    def setup_method(self):
        self.wl = UniformWorkload(600, unit=20.0)
        self.cluster = make_cluster()

    def _check(self, res, scheme=None):
        audit_sim(res, self.wl.size, scheme=scheme).raise_if_failed()
        np.testing.assert_array_equal(
            res.results, self.wl.execute_serial()
        )

    def test_death_scavenges_lost_ordinals(self):
        clean = simulate_decentral("TSS", self.wl, self.cluster)
        plan = FaultPlan(events=(
            WorkerDeath(worker=1, at=0.3 * clean.t_p),
        ))
        res = simulate_decentral("TSS", self.wl, self.cluster,
                                 chaos=plan, collect_results=True)
        self._check(res, scheme="TSS")
        assert all(c.worker != 1 or c.completed_at <= 0.3 * clean.t_p
                   for c in res.chunks)

    def test_death_and_restart(self):
        clean = simulate_decentral("FSS", self.wl, self.cluster)
        plan = FaultPlan(events=(
            WorkerDeath(worker=0, at=0.2 * clean.t_p),
            WorkerRestart(worker=0, at=0.6 * clean.t_p),
        ))
        res = simulate_decentral("FSS", self.wl, self.cluster,
                                 chaos=plan, collect_results=True)
        self._check(res)

    def test_counter_stall_delays_claims(self):
        clean = simulate_decentral("SS", self.wl, self.cluster)
        plan = FaultPlan(events=(
            MasterStall(at=0.1 * clean.t_p, duration=0.5 * clean.t_p),
        ))
        res = simulate_decentral("SS", self.wl, self.cluster,
                                 chaos=plan, collect_results=True)
        self._check(res, scheme="SS")
        # every worker queues behind the held counter at least once
        assert res.t_p > clean.t_p

    def test_message_delay_accounted_as_wait(self):
        plan = FaultPlan(events=(
            MessageDelay(worker=2, at=0.0, delay=0.05),
        ))
        base = simulate_decentral("TSS", self.wl, self.cluster)
        res = simulate_decentral("TSS", self.wl, self.cluster, chaos=plan,
                                 collect_results=True)
        self._check(res, scheme="TSS")
        assert res.workers[2].t_wait >= base.workers[2].t_wait + 0.05

    def test_hierarchical_group_death_reclaims_lease(self):
        # Kill an entire group mid-run: its unclaimed lease block must
        # be scavenged by the survivors, not leak.
        clean = simulate_decentral("FSS", self.wl, self.cluster,
                                   group_size=2)
        plan = FaultPlan(events=(
            WorkerDeath(worker=0, at=0.3 * clean.t_p),
            WorkerDeath(worker=1, at=0.3 * clean.t_p),
        ))
        res = simulate_decentral("FSS", self.wl, self.cluster,
                                 group_size=2, lease=8, chaos=plan,
                                 collect_results=True)
        self._check(res)

    def test_all_dead_raises(self):
        plan = FaultPlan(events=tuple(
            WorkerDeath(worker=i, at=0.001)
            for i in range(self.cluster.size)
        ))
        with pytest.raises(SimulationError, match="cannot complete"):
            simulate_decentral("TSS", self.wl, self.cluster, chaos=plan)

    def test_plan_outside_cluster_rejected(self):
        plan = FaultPlan(events=(WorkerDeath(worker=99, at=0.1),))
        with pytest.raises(SimulationError, match="targets worker"):
            simulate_decentral("TSS", self.wl, self.cluster, chaos=plan)


class TestRuntimeChaos:
    def test_sigkill_mid_loop_exactly_once(self, spin_workload,
                                           spin_serial):
        plan = FaultPlan(events=(WorkerDeath(worker=1, at=0.05),))
        run = run_decentral("FSS", spin_workload, 3, plan=plan)
        audit_run(run, spin_workload.size, workers=3,
                  workload=spin_workload).raise_if_failed()
        np.testing.assert_array_equal(run.results, spin_serial)

    def test_sigkill_hole_repaired_by_merge(self, spin_workload,
                                            spin_serial):
        # Two workers, fat chunks: the kill lands mid-chunk, the chunk
        # never reaches the shard, and the repair lane recomputes it.
        plan = FaultPlan(events=(WorkerDeath(worker=1, at=0.1),))
        run = run_decentral("CSS(15)", spin_workload, 2, plan=plan)
        audit_run(run, spin_workload.size, workers=2,
                  workload=spin_workload).raise_if_failed()
        np.testing.assert_array_equal(run.results, spin_serial)
        if run.recovered:
            assert any(w == REPAIR_LANE for w, _s, _e in run.chunks)

    def test_death_then_restart(self, spin_workload, spin_serial):
        plan = FaultPlan(events=(
            WorkerDeath(worker=2, at=0.05),
            WorkerRestart(worker=2, at=0.3),
        ))
        run = run_decentral("GSS", spin_workload, 3, plan=plan)
        audit_run(run, spin_workload.size, workers=3,
                  workload=spin_workload).raise_if_failed()
        np.testing.assert_array_equal(run.results, spin_serial)

    def test_counter_stall_survivable(self, spin_workload, spin_serial):
        # A MasterStall maps to holding the counter's flock: claims
        # block, nobody deadlocks, the loop completes.
        plan = FaultPlan(events=(MasterStall(at=0.05, duration=0.3),))
        run = run_decentral("TSS", spin_workload, 3, plan=plan)
        audit_run(run, spin_workload.size, workers=3,
                  workload=spin_workload).raise_if_failed()
        np.testing.assert_array_equal(run.results, spin_serial)

    def test_chaos_in_hierarchical_mode(self, spin_workload, spin_serial):
        plan = FaultPlan(events=(WorkerDeath(worker=0, at=0.05),))
        run = run_decentral("FSS", spin_workload, 4, group_size=2,
                            plan=plan)
        audit_run(run, spin_workload.size, workers=4,
                  workload=spin_workload).raise_if_failed()
        np.testing.assert_array_equal(run.results, spin_serial)

    def test_plan_outside_worker_range_rejected(self, spin_workload):
        plan = FaultPlan(events=(WorkerDeath(worker=7, at=0.1),))
        with pytest.raises(ChaosError):
            run_decentral("TSS", spin_workload, 3, plan=plan)
