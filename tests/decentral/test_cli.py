"""CLI surface of the decentral substrate: sweep artifact + --scheme."""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.base import SchemeError
from repro.experiments.runner import ALL_ARTIFACTS, build_parser, main


class TestSchemeValidation:
    def test_registry_parse_round_trips_every_name(self):
        for name in registry.names():
            key, inline = registry.parse(name)
            assert key == name
            assert inline == {}

    def test_registry_parse_inline(self):
        assert registry.parse("css(32)") == ("CSS", {"k": 32})
        assert registry.parse("GSS(4)") == ("GSS", {"min_chunk": 4})

    def test_registry_parse_rejects_unknown(self):
        with pytest.raises(SchemeError, match="unknown scheme"):
            registry.parse("NOPE")

    def test_cli_accepts_registry_names(self):
        args = build_parser().parse_args(["verify-chaos", "--scheme",
                                          "css(32)"])
        assert args.scheme == "css(32)"

    def test_cli_rejects_unknown_scheme_with_menu(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify-chaos", "--scheme",
                                       "BOGUS"])
        err = capsys.readouterr().err
        # the error lists the registry, not a hardcoded subset
        for name in registry.names():
            assert name in err


class TestDecentralSweepCommand:
    def test_listed_in_all_artifacts(self):
        assert "decentral-sweep" in ALL_ARTIFACTS

    def test_report_shows_independence_and_contention(self, capsys):
        from repro.experiments import decentral_sweep

        text = decentral_sweep.report(
            sizes=(2, 4),
            dispatch_costs=(2e-4, 2e-3),
            atomic_costs=(1e-6, 1e-3),
            total=256,
        )
        assert "spread across dispatch costs" in text
        assert "p=4: 0.000000s" in text
        assert "o=master" in text and "*=decentral" in text
        assert "counter contention" in text

    def test_cli_entry(self, capsys, monkeypatch):
        from repro.experiments import decentral_sweep

        monkeypatch.setattr(
            decentral_sweep, "report",
            lambda n_jobs=1: "decentral-sweep stub",
        )
        assert main(["decentral-sweep"]) == 0
        assert "decentral-sweep stub" in capsys.readouterr().out

    def test_dispatch_sweep_master_degrades_decentral_flat(self):
        from repro.experiments.decentral_sweep import dispatch_sweep

        points = dispatch_sweep(sizes=(4,), dispatch_costs=(2e-4, 5e-3),
                                total=256)
        cheap, dear = points
        assert dear.master_t_p > cheap.master_t_p
        assert dear.decentral_t_p == cheap.decentral_t_p
