"""SharedCounter / LeasedCounter: atomicity and SIGKILL behaviour."""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.decentral import LeasedCounter, SharedCounter


def _pound(path: str, n: int, out_path: str) -> None:
    counter = SharedCounter(path)
    seen = [counter.fetch_add(1) for _ in range(n)]
    counter.close()
    with open(out_path, "wb") as fh:
        pickle.dump(seen, fh)


def _hold_then_idle(path: str, ready) -> None:
    counter = SharedCounter(path)
    fd = counter._handle()
    import fcntl

    fcntl.flock(fd, fcntl.LOCK_EX)
    ready.set()
    time.sleep(60)  # killed long before this expires


class TestSharedCounter:
    def test_fetch_add_and_peek(self, tmp_path):
        counter = SharedCounter.create(str(tmp_path / "ctr"), value=5)
        assert counter.fetch_add(1) == 5
        assert counter.fetch_add(3) == 6
        assert counter.peek() == 9
        counter.close()

    def test_create_resets_existing(self, tmp_path):
        path = str(tmp_path / "ctr")
        SharedCounter.create(path, value=41).close()
        counter = SharedCounter.create(path)
        assert counter.peek() == 0
        counter.close()

    def test_pickle_drops_descriptor(self, tmp_path):
        counter = SharedCounter.create(str(tmp_path / "ctr"))
        counter.fetch_add(1)
        clone = pickle.loads(pickle.dumps(counter))
        assert clone._fd is None
        assert clone.fetch_add(1) == 1
        clone.close()
        counter.close()

    def test_concurrent_fetch_add_is_a_permutation(self, tmp_path):
        # 4 processes x 50 increments: every value 0..199 claimed
        # exactly once -- the exactly-once property the runtime builds on.
        path = str(tmp_path / "ctr")
        SharedCounter.create(path).close()
        ctx = multiprocessing.get_context("fork")
        outs = [str(tmp_path / f"out-{i}.pkl") for i in range(4)]
        procs = [
            ctx.Process(target=_pound, args=(path, 50, out))
            for out in outs
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(30)
            assert p.exitcode == 0
        claimed = []
        for out in outs:
            with open(out, "rb") as fh:
                claimed.extend(pickle.load(fh))
        assert sorted(claimed) == list(range(200))

    def test_sigkilled_holder_releases_the_lock(self, tmp_path):
        # The design reason for flock over mp.Lock: kill a process
        # while it HOLDS the exclusive lock; the kernel must release it
        # so survivors make progress with no watchdog.
        path = str(tmp_path / "ctr")
        SharedCounter.create(path).close()
        ctx = multiprocessing.get_context("fork")
        ready = ctx.Event()
        holder = ctx.Process(target=_hold_then_idle, args=(path, ready))
        holder.start()
        assert ready.wait(10)
        os.kill(holder.pid, signal.SIGKILL)
        holder.join(10)
        counter = SharedCounter(path)
        t0 = time.monotonic()
        assert counter.fetch_add(1) == 0  # old value: no partial write
        assert time.monotonic() - t0 < 5.0
        counter.close()


class TestLeasedCounter:
    def _make(self, tmp_path, lease=4, limit=100):
        global_ctr = SharedCounter.create(str(tmp_path / "global"))
        return LeasedCounter.create(
            str(tmp_path / "group"), global_ctr, lease=lease, limit=limit
        )

    def test_claims_are_sequential_with_one_refill_per_lease(self, tmp_path):
        leased = self._make(tmp_path, lease=4)
        claims = [leased.claim() for _ in range(8)]
        assert [c[0] for c in claims] == list(range(8))
        assert [c[1] for c in claims] == [True, False, False, False] * 2
        leased.close()

    def test_two_groups_partition_the_global_range(self, tmp_path):
        global_ctr = SharedCounter.create(str(tmp_path / "global"))
        g0 = LeasedCounter.create(
            str(tmp_path / "g0"), global_ctr, lease=3, limit=100
        )
        g1 = LeasedCounter.create(
            str(tmp_path / "g1"), global_ctr, lease=3, limit=100
        )
        taken = [g0.claim()[0], g1.claim()[0]]  # each refills a block
        taken += [g0.claim()[0], g1.claim()[0], g0.claim()[0]]
        assert sorted(taken) == [0, 1, 2, 3, 4]
        g0.close()
        g1.close()

    def test_claims_may_exceed_limit_near_exhaustion(self, tmp_path):
        # The lease can straddle the limit; indices >= limit mean "no
        # more work" and are checked per-claim by the executor.
        leased = self._make(tmp_path, lease=4, limit=2)
        indices = [leased.claim()[0] for _ in range(4)]
        assert indices == [0, 1, 2, 3]
        leased.close()

    def test_lease_must_be_positive(self, tmp_path):
        global_ctr = SharedCounter.create(str(tmp_path / "global"))
        with pytest.raises(ValueError):
            LeasedCounter(str(tmp_path / "g"), global_ctr, lease=0,
                          limit=10)
        global_ctr.close()

    def test_pickle_round_trip(self, tmp_path):
        leased = self._make(tmp_path, lease=4)
        assert leased.claim() == (0, True)
        clone = pickle.loads(pickle.dumps(leased))
        assert clone.claim() == (1, False)
        clone.close()
        leased.close()
