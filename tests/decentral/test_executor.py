"""run_decentral: the shared-counter runtime against serial and master."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SchemeError
from repro.decentral import (
    DECENTRAL_SCHEMES,
    make_calculator,
    run_decentral,
)
from repro.runtime import WorkerSpec, run_parallel
from repro.verify import audit_run
from repro.workloads import SpinWorkload, UniformWorkload

ORDER_INVARIANT = ("SS", "CSS(16)", "GSS", "TSS")


@pytest.fixture(scope="module")
def workload():
    return UniformWorkload(400, unit=10.0)


@pytest.fixture(scope="module")
def serial(workload):
    return workload.execute_serial()


class TestRunDecentral:
    @pytest.mark.parametrize("scheme", DECENTRAL_SCHEMES)
    def test_bit_identical_to_serial(self, scheme, workload, serial):
        run = run_decentral(scheme, workload, 4)
        np.testing.assert_array_equal(run.results, serial)
        audit_run(run, workload.size, workers=4,
                  workload=workload).raise_if_failed()

    @pytest.mark.parametrize("scheme", ORDER_INVARIANT)
    def test_bit_identical_to_master_runtime(self, scheme, workload):
        # Order-invariant schemes: the decentral merged result equals
        # the master-based runtime's, bit for bit.
        master = run_parallel(scheme, workload, 3)
        dec = run_decentral(scheme, workload, 3)
        np.testing.assert_array_equal(dec.results, master.results)

    @pytest.mark.parametrize("scheme", ORDER_INVARIANT)
    def test_trace_conforms_to_scheme(self, scheme, workload):
        run = run_decentral(scheme, workload, 4)
        audit_run(run, workload.size, workers=4, scheme=scheme,
                  workload=workload).raise_if_failed()

    def test_chunks_cover_exactly_and_match_calc(self, workload):
        run = run_decentral("TSS", workload, 4)
        calc = make_calculator("TSS", workload.size, 4)
        spans = sorted((start, stop) for _w, start, stop in run.chunks)
        assert spans == [calc.interval(i) for i in range(calc.n_chunks)]
        assert run.n_chunks == calc.n_chunks

    def test_stats_account_every_chunk(self, workload):
        run = run_decentral("FSS", workload, 3)
        assert set(run.stats) <= set(range(3))
        assert sum(s.chunks for s in run.stats.values()) == run.n_chunks
        assert sum(s.iterations for s in run.stats.values()) \
            == workload.size

    def test_flat_mode_counts_global_ops(self, workload):
        run = run_decentral("CSS(25)", workload, 3)
        # one atomic per chunk plus one dry fetch per worker
        assert run.global_ops == run.n_chunks + 3
        assert run.local_ops == 0
        assert run.group_size is None

    def test_hierarchical_mode_trades_global_for_local(self, workload):
        flat = run_decentral("SS", workload, 4)
        hier = run_decentral("SS", workload, 4, group_size=2, lease=16)
        np.testing.assert_array_equal(hier.results, flat.results)
        audit_run(hier, workload.size, workers=4,
                  workload=workload).raise_if_failed()
        assert hier.group_size == 2
        assert hier.global_ops < flat.global_ops
        assert hier.local_ops > 0

    def test_hierarchical_single_group(self, workload, serial):
        run = run_decentral("GSS", workload, 3, group_size=3)
        np.testing.assert_array_equal(run.results, serial)

    def test_uneven_group_split(self, workload, serial):
        # 5 workers, groups of 2 -> last group has one member.
        run = run_decentral("TSS", workload, 5, group_size=2)
        np.testing.assert_array_equal(run.results, serial)
        audit_run(run, workload.size, workers=5,
                  workload=workload).raise_if_failed()

    def test_collect_results_false(self, workload):
        run = run_decentral("TSS", workload, 3, collect_results=False)
        assert run.results is None
        audit_run(run, workload.size, workers=3).raise_if_failed()

    def test_worker_slowdown_respected(self):
        # A compute-bound workload: per-iteration cost (~1.5ms) sits
        # well above timer/allocator noise, unlike UniformWorkload
        # whose execute() is a numpy slice measured in microseconds.
        wl = SpinWorkload(60, spins=60)
        specs = [WorkerSpec(slowdown=6.0), WorkerSpec()]
        run = run_decentral("CSS(5)", wl, 2, specs=specs)
        np.testing.assert_array_equal(run.results, wl.execute_serial())
        fast = run.stats[1]
        slow = run.stats[0]
        if slow.chunks and fast.chunks:
            # Nominal ratio is 6x; 2x leaves headroom for a loaded box.
            assert (slow.compute_seconds / max(slow.iterations, 1)
                    > 2.0 * fast.compute_seconds
                    / max(fast.iterations, 1))

    def test_empty_loop(self):
        wl = UniformWorkload(0, unit=1.0)
        run = run_decentral("TSS", wl, 3)
        assert run.n_chunks == 0
        assert run.results.size == 0

    def test_single_worker(self, workload, serial):
        run = run_decentral("GSS", workload, 1)
        np.testing.assert_array_equal(run.results, serial)

    def test_distributed_scheme_rejected(self, workload):
        with pytest.raises(SchemeError, match="no decentral form"):
            run_decentral("DTSS", workload, 3)

    def test_bad_worker_count_rejected(self, workload):
        with pytest.raises(ValueError):
            run_decentral("TSS", workload, 0)

    def test_bad_group_size_rejected(self, workload):
        with pytest.raises(ValueError):
            run_decentral("TSS", workload, 3, group_size=4)
