"""DecentralSimulation: contention model invariants and comparisons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import SimJob, run_batch
from repro.decentral import (
    DECENTRAL_SCHEMES,
    DecentralSimulation,
    make_calculator,
    simulate_decentral,
)
from repro.simulation import SimulationError, simulate
from repro.verify import audit_sim
from repro.workloads import UniformWorkload

from tests.conftest import make_cluster


@pytest.fixture(scope="module")
def workload():
    return UniformWorkload(600, unit=20.0)


class TestSimulateDecentral:
    @pytest.mark.parametrize("scheme", DECENTRAL_SCHEMES)
    def test_audits_clean_and_results_serial(self, scheme, workload):
        cluster = make_cluster()
        res = simulate_decentral(scheme, workload, cluster,
                                 collect_results=True)
        audit_sim(res, workload.size, scheme=scheme).raise_if_failed()
        np.testing.assert_array_equal(
            res.results, workload.execute_serial()
        )

    def test_deterministic(self, workload):
        cluster = make_cluster()
        a = simulate_decentral("TSS", workload, cluster)
        b = simulate_decentral("TSS", workload, cluster)
        assert a.t_p == b.t_p
        assert [(c.worker, c.start, c.stop) for c in a.chunks] \
            == [(c.worker, c.start, c.stop) for c in b.chunks]

    def test_chunk_geometry_matches_calculator(self, workload):
        cluster = make_cluster()
        res = simulate_decentral("FSS", workload, cluster)
        calc = make_calculator("FSS", workload.size, cluster.size)
        spans = sorted((c.start, c.stop) for c in res.chunks)
        assert spans == [calc.interval(i) for i in range(calc.n_chunks)]

    def test_independent_of_master_dispatch_cost(self, workload):
        # The acceptance claim: no master in the path, so sweeping the
        # cluster's master_service must not move the decentral T_p at
        # all, while the master engine degrades.
        t_ps, master_t_ps = [], []
        for service in (1e-4, 1e-3, 1e-2):
            cluster = make_cluster(master_service=service)
            t_ps.append(simulate_decentral("TSS", workload, cluster).t_p)
            master_t_ps.append(simulate("TSS", workload, cluster).t_p)
        assert t_ps[0] == t_ps[1] == t_ps[2]
        assert master_t_ps[0] < master_t_ps[-1]

    def test_atomic_cost_creates_contention(self, workload):
        cluster = make_cluster()
        cheap = simulate_decentral("SS", workload, cluster,
                                   atomic_op_cost=1e-6)
        dear = simulate_decentral("SS", workload, cluster,
                                  atomic_op_cost=5e-3)
        assert dear.t_p > cheap.t_p

    def test_hierarchical_damps_contention(self):
        # Saturation regime: claim inter-arrival is below the atomic
        # cost, so the flat counter serializes the whole loop; leasing
        # 16-chunk blocks through cheap group-local counters removes
        # most global atomics from the critical path.
        wl = UniformWorkload(600, unit=5.0)
        cluster = make_cluster(n_fast=4, n_slow=4)
        flat = simulate_decentral("SS", wl, cluster, atomic_op_cost=5e-3)
        hier = simulate_decentral("SS", wl, cluster, atomic_op_cost=5e-3,
                                  local_op_cost=2e-4,
                                  group_size=2, lease=16)
        audit_sim(hier, wl.size).raise_if_failed()
        assert hier.t_p < flat.t_p

    def test_counter_ops_accounting(self, workload):
        cluster = make_cluster()
        sim = DecentralSimulation(
            make_calculator("CSS", workload.size, cluster.size, k=25),
            workload, cluster,
        )
        sim.run()
        global_ops, local_ops = sim.counter_ops
        n_chunks = make_calculator(
            "CSS", workload.size, cluster.size, k=25
        ).n_chunks
        assert global_ops == n_chunks + cluster.size
        assert local_ops == 0

    def test_hierarchical_counter_ops_split(self, workload):
        cluster = make_cluster(n_fast=4, n_slow=4)
        sim = DecentralSimulation(
            make_calculator("SS", workload.size, cluster.size),
            workload, cluster, group_size=4, lease=8,
        )
        sim.run()
        global_ops, local_ops = sim.counter_ops
        assert local_ops > global_ops

    def test_empty_loop(self):
        wl = UniformWorkload(0, unit=1.0)
        res = simulate_decentral("TSS", wl, make_cluster(),
                                 collect_results=True)
        assert res.t_p == 0.0
        assert res.chunks == []
        assert res.results.size == 0

    def test_distributed_scheme_rejected(self, workload):
        from repro.core.base import SchemeError

        with pytest.raises(SchemeError, match="no decentral form"):
            simulate_decentral("DTSS", workload, make_cluster())

    def test_mismatched_calculator_rejected(self, workload):
        calc = make_calculator("TSS", workload.size, 3)
        with pytest.raises(SimulationError, match="cluster has"):
            simulate_decentral(calc, workload, make_cluster())  # size 4

    def test_bad_group_size_rejected(self, workload):
        with pytest.raises(SimulationError, match="group_size"):
            simulate_decentral("TSS", workload, make_cluster(),
                               group_size=99)


class TestBatchIntegration:
    def test_decentral_engine_job(self, workload):
        cluster = make_cluster()
        job = SimJob(scheme="TSS", workload=workload, cluster=cluster,
                     engine="decentral",
                     params={"atomic_op_cost": 2e-5})
        [result] = run_batch([job])
        assert result.t_p == simulate_decentral(
            "TSS", workload, cluster, atomic_op_cost=2e-5
        ).t_p

    def test_engine_validated(self, workload):
        with pytest.raises(ValueError, match="decentral"):
            SimJob(scheme="TSS", workload=workload,
                   cluster=make_cluster(), engine="bogus")

    def test_jobs_fan_out_bit_identical(self, workload):
        cluster = make_cluster()
        jobs = [
            SimJob(scheme=s, workload=workload, cluster=cluster,
                   engine="decentral")
            for s in ("TSS", "GSS")
        ]
        serial_results = run_batch(jobs, n_jobs=1)
        pooled_results = run_batch(jobs, n_jobs=2)
        for a, b in zip(serial_results, pooled_results):
            assert a.t_p == b.t_p
