"""Integration tests: the batch layer + persistent cache as used by
the experiment entry points and the repro-experiments CLI."""

from __future__ import annotations

import pytest

from repro import cache
from repro.experiments import figures, replicate, table2, table3, windows
from repro.experiments.runner import ALL_ARTIFACTS, build_parser, main
from repro.workloads import MandelbrotWorkload


@pytest.fixture(scope="module")
def small_paper_workload():
    from repro.experiments import paper_workload

    return paper_workload(width=300, height=150)


class TestWarmCache:
    def test_warm_table2_skips_cost_computation(self, tmp_path,
                                                monkeypatch):
        from repro.experiments import paper_workload

        previous = cache.get_cache()
        try:
            cache.configure(directory=tmp_path / "warm")
            # Cold pass: computes and persists the profile.
            paper_workload(width=200, height=100).costs()

            def boom(self):  # pragma: no cover - must not run
                raise AssertionError(
                    "_compute_costs ran despite a warm cache"
                )

            monkeypatch.setattr(
                MandelbrotWorkload, "_compute_costs", boom
            )
            results = table2.run(width=200, height=100)
            assert set(results) == set(table2.SCHEMES)
        finally:
            cache._active = previous


class TestParallelEqualsSerial:
    def test_table2(self, small_paper_workload):
        serial = table2.run(workload=small_paper_workload, n_jobs=1)
        parallel = table2.run(workload=small_paper_workload, n_jobs=2)
        for scheme in table2.SCHEMES:
            assert serial[scheme].t_p == parallel[scheme].t_p

    def test_table3(self, small_paper_workload):
        serial = table3.run(workload=small_paper_workload, n_jobs=1)
        parallel = table3.run(workload=small_paper_workload, n_jobs=2)
        for scheme in table3.SCHEMES:
            assert serial[scheme].t_p == parallel[scheme].t_p

    def test_speedup_figure(self, small_paper_workload):
        serial = figures.figure4(workload=small_paper_workload,
                                 n_jobs=1)
        parallel = figures.figure4(workload=small_paper_workload,
                                   n_jobs=3)
        assert serial.series == parallel.series

    def test_window_sweep(self):
        kwargs = dict(widths=(120, 240), schemes=("TSS", "DTSS"),
                      height=80)
        serial = windows.window_sweep(n_jobs=1, **kwargs)
        parallel = windows.window_sweep(n_jobs=2, **kwargs)
        assert serial == parallel

    def test_replicated_comparison(self, small_paper_workload):
        kwargs = dict(schemes=("TSS", "DTSS"), replications=3,
                      workload=small_paper_workload)
        serial = replicate.replicated_comparison(n_jobs=1, **kwargs)
        parallel = replicate.replicated_comparison(n_jobs=2, **kwargs)
        assert [s.t_ps for s in serial] == [p.t_ps for p in parallel]


class TestCliAll:
    def test_all_covers_every_artifact(self):
        # The regression this guards: fig2/gantt/windows/ablations/
        # replicate/validate were silently skipped by the old
        # `in (..., "all")` dispatch.
        for artifact in ("fig2", "gantt", "windows", "ablations",
                         "replicate", "validate"):
            assert artifact in ALL_ARTIFACTS

    def test_all_runs_every_artifact(self, capsys):
        assert main(["all", "--width", "120", "--height", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "Figure 1" in out
        assert "@" in out  # fig2 ASCII fractal
        assert "Per-PE timelines" in out  # gantt
        assert "I=120" in out and "I=240" in out  # windows matrix
        assert "Figure 7" in out  # figures
        assert "ACP scale" in out  # ablations
        assert "load realizations" in out  # replicate
        assert "Reproduction gate" in out  # validate

    def test_all_reuses_one_workload(self, monkeypatch):
        calls = []
        original = MandelbrotWorkload._compute_costs

        def counting(self):
            calls.append((self.width, self.height))
            return original(self)

        monkeypatch.setattr(
            MandelbrotWorkload, "_compute_costs", counting
        )
        assert main(["table2", "--width", "140", "--height",
                     "70"]) == 0
        # One workload, one whole-grid pass (not one per half/table).
        assert calls.count((140, 70)) == 1


class TestCliFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_jobs_flag_runs(self, capsys):
        assert main(["table2", "--width", "150", "--height", "80",
                     "--jobs", "2"]) == 0
        assert "T_p" in capsys.readouterr().out

    def test_cache_dir_flag_populates_directory(self, tmp_path,
                                                capsys):
        previous = cache.get_cache()
        try:
            target = tmp_path / "cli-cache"
            assert main(["table2", "--width", "130", "--height", "70",
                         "--cache-dir", str(target)]) == 0
            assert list(target.glob("*.npy"))
        finally:
            cache._active = previous

    def test_no_cache_flag_disables_writes(self, tmp_path, capsys):
        previous = cache.get_cache()
        try:
            target = tmp_path / "never-written"
            assert main(["table2", "--width", "130", "--height", "70",
                         "--cache-dir", str(target),
                         "--no-cache"]) == 0
            assert not target.exists()
        finally:
            cache._active = previous
