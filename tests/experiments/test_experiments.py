"""Tests for the experiment modules: every paper artifact regenerates
and satisfies its shape claims (at reduced scale for speed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    figures,
    overload_pattern,
    paper_cluster,
    paper_workload,
    speedup_configuration,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import build_parser, main


@pytest.fixture(scope="module")
def small_paper_workload():
    # A quarter of the paper's window; cluster calibration keeps the
    # paper's timescale and communication balance.  (Much smaller
    # windows make single-run rankings noisy: chunk counts shrink and
    # one unlucky chunk placement reorders the close schemes.)
    return paper_workload(width=1000, height=500)


class TestTable1:
    def test_rows_match_paper_exactly(self):
        rows = table1.run()
        for scheme, expected in table1.PAPER_TABLE1.items():
            assert rows[scheme][: len(expected)] == expected, scheme

    def test_report_marks_matches(self):
        text = table1.report()
        assert "DIFFERS" not in text
        assert text.count("MATCH") == len(table1.PAPER_TABLE1)

    def test_alternate_problem_size(self):
        rows = table1.run(total=500, workers=2)
        assert sum(rows["S"]) == 500


class TestPaperCluster:
    def test_calibration(self, small_paper_workload):
        cluster = paper_cluster(small_paper_workload,
                                serial_seconds=60.0)
        fast = cluster.nodes[0]
        assert small_paper_workload.total_cost() / fast.speed == \
            pytest.approx(60.0)

    def test_machine_mix(self, small_paper_workload):
        cluster = paper_cluster(small_paper_workload)
        names = [n.name for n in cluster.nodes]
        assert sum(1 for n in names if n.startswith("fast")) == 3
        assert sum(1 for n in names if n.startswith("slow")) == 5

    def test_speed_ratio(self, small_paper_workload):
        cluster = paper_cluster(small_paper_workload)
        speeds = [n.speed for n in cluster.nodes]
        assert speeds[0] / speeds[-1] == pytest.approx(3.0)

    def test_overload_sets_run_queue(self, small_paper_workload):
        cluster = paper_cluster(
            small_paper_workload, overloaded=(0, 3)
        )
        assert cluster.nodes[0].load.q_at(0) > 1
        assert cluster.nodes[1].load.q_at(0) == 1
        assert cluster.nodes[3].load.q_at(0) > 1

    def test_result_volume_is_paper_equivalent(
        self, small_paper_workload
    ):
        cluster = paper_cluster(small_paper_workload)
        total_bytes = (
            cluster.result_bytes_per_item * small_paper_workload.size
        )
        assert total_bytes == pytest.approx(4000 * 2000 * 4.0)

    def test_overload_pattern_known_ps(self):
        assert overload_pattern(1) == (0,)
        assert len(overload_pattern(8)) == 4
        with pytest.raises(ValueError):
            overload_pattern(3)

    def test_speedup_configuration_mixes(self, small_paper_workload):
        for p in (1, 2, 4, 8):
            cluster = speedup_configuration(small_paper_workload, p)
            assert cluster.size == p


class TestTable2Shapes:
    def test_dedicated_shape(self, small_paper_workload):
        results = table2.run(workload=small_paper_workload,
                             dedicated=True)
        assert set(results) == set(table2.SCHEMES)
        # Paper claim: TSS performs best among the master-driven simple
        # schemes, and FISS worst (many tiny chunks vs stage tail).
        master = {k: v.t_p for k, v in results.items()
                  if k != "TreeS"}
        assert min(master, key=master.get) in ("TSS", "TFSS")
        # Every scheme completed the full loop.
        for res in results.values():
            assert res.total_iterations == small_paper_workload.size

    def test_nondedicated_slower_than_dedicated(
        self, small_paper_workload
    ):
        ded = table2.run(workload=small_paper_workload, dedicated=True)
        non = table2.run(workload=small_paper_workload,
                         dedicated=False)
        for scheme in ("TSS", "FSS", "TFSS"):
            assert non[scheme].t_p > ded[scheme].t_p


class TestTable3Shapes:
    def test_distributed_beats_simple(self, small_paper_workload):
        simple = table2.run(workload=small_paper_workload,
                            dedicated=True)
        dist = table3.run(workload=small_paper_workload,
                          dedicated=True)
        pairs = [("TSS", "DTSS"), ("FSS", "DFSS"),
                 ("FISS", "DFISS"), ("TFSS", "DTFSS")]
        wins = sum(
            dist[d].t_p < simple[s].t_p for s, d in pairs
        )
        assert wins >= 3  # the paper's headline result

    def test_distributed_balances_comp(self, small_paper_workload):
        dist = table3.run(workload=small_paper_workload,
                          dedicated=True)
        simple = table2.run(workload=small_paper_workload,
                            dedicated=True)
        # Paper: "the execution is well-balanced, in terms of the
        # computation times" for the distributed schemes.
        assert dist["DTSS"].comp_imbalance() \
            < simple["TSS"].comp_imbalance()

    def test_dtss_best_distributed(self, small_paper_workload):
        dist = table3.run(workload=small_paper_workload,
                          dedicated=False)
        master = {k: v.t_p for k, v in dist.items() if k != "TreeS"}
        best = min(master, key=master.get)
        assert best in ("DTSS", "DTFSS")


class TestFigures:
    def test_figure1_profiles(self):
        data = figures.figure1(width=200, height=200, sf=4)
        orig, reord = data["original"], data["reordered"]
        assert orig.shape == reord.shape == (200,)
        # Same multiset of costs, different order.
        np.testing.assert_allclose(np.sort(orig), np.sort(reord))
        assert not np.array_equal(orig, reord)

    def test_figure2_ascii(self):
        art = figures.figure2_ascii(width=40, height=16)
        assert len(art.splitlines()) == 16

    def test_speedup_figure_shapes(self, small_paper_workload):
        fig = figures.figure6(workload=small_paper_workload)
        assert set(fig.series) == set(figures.DISTRIBUTED)
        for scheme, points in fig.series.items():
            ps = [p for p, _t, _s in points]
            assert ps == [1, 2, 4, 8]
            speedups = [s for _p, _t, s in points]
            # Speedup grows from p=1 to p=8 and respects the power cap
            # (generous tolerance: T_p includes communication).
            assert speedups[-1] > speedups[0]
            assert speedups[-1] <= fig.cap + 0.5
        assert "Figure 6" in fig.report()

    def test_distributed_scale_better_than_simple(
        self, small_paper_workload
    ):
        f4 = figures.figure4(workload=small_paper_workload)
        f6 = figures.figure6(workload=small_paper_workload)
        simple_best = max(
            pts[-1][2] for name, pts in f4.series.items()
            if name != "TreeS"
        )
        dist_best = max(
            pts[-1][2] for name, pts in f6.series.items()
            if name != "TreeS"
        )
        assert dist_best > simple_best


class TestRunnerCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"

    def test_main_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "MATCH" in out

    def test_main_table2_small(self, capsys):
        assert main(["table2", "--width", "200", "--height",
                     "100"]) == 0
        out = capsys.readouterr().out
        assert "T_p" in out

    def test_main_fig1(self, capsys):
        assert main(["fig1", "--width", "200", "--height", "100"]) == 0
        assert "Figure 1" in capsys.readouterr().out
