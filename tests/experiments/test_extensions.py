"""Tests for the extension experiment modules: ablations, replication,
and the validation gate."""

from __future__ import annotations

import pytest

from repro.experiments import ablations, paper_workload, replicate, validation
from repro.experiments.runner import main


@pytest.fixture(scope="module")
def wl():
    return paper_workload(width=600, height=300)


class TestAblations:
    def test_acp_scale_sweep_shows_starvation(self, wl):
        rows = ablations.acp_scale_sweep(wl, scales=(1, 10))
        classic, improved = rows
        assert classic.idle_pes >= 1  # Sec. 5.2-I starvation
        assert improved.idle_pes == 0

    def test_css_sweep_chunk_counts(self, wl):
        rows = ablations.css_chunk_sweep(wl, ks=(1, 10))
        assert rows[0].chunks == wl.size
        assert rows[1].chunks == -(-wl.size // 10)

    def test_css_imbalance_grows_with_k(self, wl):
        rows = ablations.css_chunk_sweep(wl, ks=(1, 200))
        assert rows[1].imbalance > rows[0].imbalance

    def test_alpha_sweep_runs(self, wl):
        rows = ablations.alpha_sweep(wl, alphas=(2.0, 3.0))
        assert all(r.t_p > 0 for r in rows)
        # Larger alpha => smaller stages => more chunks.
        assert rows[1].chunks > rows[0].chunks

    def test_sampling_sweep_improves_tp(self):
        # At non-tiny scale S_f=4 clearly beats no reordering (the
        # paper's motivation); tiny windows are chunk-count noisy.
        rows = ablations.sampling_sweep(width=1000, height=500,
                                        sfs=(1, 4))
        assert rows[1].t_p < rows[0].t_p

    def test_master_service_sweep_monotone_overall(self, wl):
        rows = ablations.master_service_sweep(
            wl, services_ms=(0.1, 200.0)
        )
        assert rows[1].t_p >= rows[0].t_p

    def test_report_renders(self, wl):
        text = ablations.report(wl)
        assert "ACP scale" in text
        assert "Sampling frequency" in text
        assert "FSS alpha" in text


class TestReplicate:
    def test_stats_properties(self):
        stats = replicate.SchemeStats("X", (10.0, 20.0, 30.0))
        assert stats.mean == 20.0
        assert stats.best == 10.0
        assert stats.worst == 30.0
        assert stats.std == pytest.approx(10.0)

    def test_single_replication_std_zero(self):
        assert replicate.SchemeStats("X", (5.0,)).std == 0.0

    def test_paired_comparison(self, wl):
        stats = replicate.replicated_comparison(
            schemes=("TSS", "DTSS"), replications=3, workload=wl
        )
        assert [s.scheme for s in stats] == ["TSS", "DTSS"]
        assert all(len(s.t_ps) == 3 for s in stats)
        # Determinism: re-running reproduces identical samples.
        again = replicate.replicated_comparison(
            schemes=("TSS", "DTSS"), replications=3, workload=wl
        )
        assert stats[0].t_ps == again[0].t_ps

    def test_distributed_beats_simple_on_average(self, wl):
        stats = {
            s.scheme: s
            for s in replicate.replicated_comparison(
                schemes=("TSS", "DTSS"), replications=5, workload=wl
            )
        }
        assert stats["DTSS"].mean < stats["TSS"].mean

    def test_report(self, wl):
        text = replicate.report(schemes=("TSS", "DTSS"),
                                replications=2, workload=wl)
        assert "mean T_p" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate.replicated_comparison(replications=0)


class TestValidationGate:
    def test_all_checks_pass_at_scale(self):
        # The gate itself runs at width 1000 by default in the CLI; at
        # 600 the rank-sensitive checks can flip, so run the full set
        # at the CLI's scale once.
        checks = validation.run_checks(
            paper_workload(width=1000, height=500)
        )
        failed = [c.claim for c in checks if not c.passed]
        assert not failed, failed

    def test_report_format(self):
        text = validation.report(paper_workload(width=1000,
                                                height=500))
        assert "[PASS]" in text
        assert "checks passed" in text


class TestRunnerNewCommands:
    def test_ablations_command(self, capsys):
        assert main(["ablations"]) == 0
        assert "ACP scale" in capsys.readouterr().out

    def test_validate_command(self, capsys):
        assert main(["validate", "--width", "1000", "--height",
                     "500"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction gate" in out
