"""Simulator-vs-runtime parity tests (the substitution argument)."""

from __future__ import annotations

import pytest

from repro.experiments.parity import compare_substrates
from repro.workloads import MandelbrotWorkload, UniformWorkload


@pytest.fixture(scope="module")
def parity_workload():
    return MandelbrotWorkload(80, 50, max_iter=24)


@pytest.mark.parametrize(
    "scheme", ["CSS(8)", "GSS", "TSS", "FSS", "FISS", "TFSS", "DTSS"]
)
def test_substrates_agree(scheme, parity_workload):
    report = compare_substrates(scheme, parity_workload, n_workers=3)
    assert report.results_match, scheme
    assert report.sim_coverage_ok and report.run_coverage_ok
    assert report.ok, report


@pytest.mark.parametrize("scheme", ["CSS(8)", "TSS", "DTSS"])
def test_both_substrates_pass_the_auditor(scheme, parity_workload):
    """Full invariant audit (not just coverage) on both traces."""
    from repro.runtime import run_parallel
    from repro.simulation import ClusterSpec, NodeSpec, simulate
    from repro.verify import audit_run, audit_sim

    cluster = ClusterSpec(nodes=[
        NodeSpec(name=f"n{i}", speed=100.0) for i in range(3)
    ])
    sim = simulate(scheme, parity_workload, cluster)
    audit_sim(sim, parity_workload.size, scheme=scheme).raise_if_failed()
    run = run_parallel(scheme, parity_workload, 3)
    audit_run(run, workload=parity_workload, scheme=scheme,
              workers=3).raise_if_failed()


def test_first_chunk_identical_for_css(parity_workload):
    # CSS's chunk sizes are order-independent: the full multiset of
    # sizes must match across substrates, not just the counts.
    report = compare_substrates("CSS(7)", parity_workload, n_workers=3)
    assert report.sim_chunks == report.run_chunks
    assert report.sim_largest == report.run_largest == 7


def test_uniform_workload_parity():
    report = compare_substrates("TSS", UniformWorkload(120),
                                n_workers=4)
    assert report.ok


def test_runtime_wait_accounting_present(parity_workload):
    from repro.runtime import run_parallel

    run = run_parallel("GSS", parity_workload, 3)
    waits = [s.wait_seconds for s in run.stats.values()]
    assert all(w >= 0.0 for w in waits)
    assert any(w > 0.0 for w in waits)
