"""Simulator-vs-runtime parity tests (the substitution argument)."""

from __future__ import annotations

import pytest

from repro.experiments.parity import compare_substrates
from repro.workloads import MandelbrotWorkload, UniformWorkload


@pytest.fixture(scope="module")
def parity_workload():
    return MandelbrotWorkload(80, 50, max_iter=24)


@pytest.mark.parametrize(
    "scheme", ["CSS(8)", "GSS", "TSS", "FSS", "FISS", "TFSS", "DTSS"]
)
def test_substrates_agree(scheme, parity_workload):
    report = compare_substrates(scheme, parity_workload, n_workers=3)
    assert report.results_match, scheme
    assert report.sim_coverage_ok and report.run_coverage_ok
    assert report.ok, report


def test_first_chunk_identical_for_css(parity_workload):
    # CSS's chunk sizes are order-independent: the full multiset of
    # sizes must match across substrates, not just the counts.
    report = compare_substrates("CSS(7)", parity_workload, n_workers=3)
    assert report.sim_chunks == report.run_chunks
    assert report.sim_largest == report.run_largest == 7


def test_uniform_workload_parity():
    report = compare_substrates("TSS", UniformWorkload(120),
                                n_workers=4)
    assert report.ok


def test_runtime_wait_accounting_present(parity_workload):
    from repro.runtime import run_parallel

    run = run_parallel("GSS", parity_workload, 3)
    waits = [s.wait_seconds for s in run.stats.values()]
    assert all(w >= 0.0 for w in waits)
    assert any(w > 0.0 for w in waits)
