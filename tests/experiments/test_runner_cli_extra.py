"""Tests for the remaining CLI commands (gantt, windows, figures)."""

from __future__ import annotations

from repro.experiments.runner import main


class TestGanttCommand:
    def test_renders_both_schemes(self, capsys):
        assert main(["gantt", "--width", "300", "--height",
                     "150"]) == 0
        out = capsys.readouterr().out
        assert "TSS:" in out and "DTSS:" in out
        assert "#" in out
        # One row per PE for each of the two charts.
        assert out.count("fast1") == 2
        assert out.count("slow5") == 2


class TestWindowsCommand:
    def test_renders_matrix(self, capsys):
        assert main(["windows"]) == 0
        out = capsys.readouterr().out
        assert "I=" in out
        assert "TSS" in out and "DTSS" in out


class TestFiguresCommand:
    def test_includes_ascii_charts(self, capsys):
        assert main(["figures", "--width", "300", "--height",
                     "150"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 7" in out
        # The line charts carry the series legend.
        assert "o=TSS" in out or "o=DTSS" in out


class TestFig2Command:
    def test_ascii_fractal(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "@" in out  # set interior glyph
