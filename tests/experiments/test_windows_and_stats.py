"""Tests for the window sweep, the sign test, and the MPI shim."""

from __future__ import annotations

import pytest

from repro.experiments import windows
from repro.experiments.replicate import sign_test
from repro.runtime import have_mpi
from repro.runtime.mpi import run_mpi


class TestWindowSweep:
    def test_sweep_grid(self):
        points = windows.window_sweep(
            widths=(200, 400), schemes=("TSS", "DTSS"), height=100
        )
        assert len(points) == 4
        assert {p.scheme for p in points} == {"TSS", "DTSS"}
        assert {p.width for p in points} == {200, 400}
        assert all(p.t_p > 0 and p.chunks > 0 for p in points)

    def test_calibration_keeps_tp_in_band(self):
        # T_p is calibrated per workload; across widths it must stay in
        # a narrow band (not scale with I).
        points = windows.window_sweep(
            widths=(400, 1600), schemes=("DTSS",), height=200
        )
        t_ps = [p.t_p for p in points]
        assert max(t_ps) < 2.5 * min(t_ps)

    def test_report_renders(self):
        text = windows.report(widths=(200, 400), schemes=("TSS",),
                              height=100)
        assert "I=200" in text and "I=400" in text


class TestSignTest:
    def test_all_wins_is_significant(self):
        a = [1.0] * 10
        b = [2.0] * 10
        assert sign_test(a, b) < 0.01

    def test_even_split_not_significant(self):
        a = [1.0, 2.0] * 5
        b = [2.0, 1.0] * 5
        assert sign_test(a, b) == pytest.approx(1.0, abs=0.3)

    def test_ties_dropped(self):
        assert sign_test([1.0, 1.0], [1.0, 1.0]) == 1.0

    def test_symmetry(self):
        a = [1.0, 1.0, 1.0, 5.0]
        b = [2.0, 2.0, 2.0, 1.0]
        assert sign_test(a, b) == pytest.approx(sign_test(b, a))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            sign_test([1.0], [1.0, 2.0])

    def test_p_value_range(self):
        import random

        rng = random.Random(0)
        for _ in range(20):
            n = rng.randint(1, 12)
            a = [rng.random() for _ in range(n)]
            b = [rng.random() for _ in range(n)]
            p = sign_test(a, b)
            assert 0.0 <= p <= 1.0


class TestMpiShim:
    def test_have_mpi_is_false_offline(self):
        # The offline environment has no mpi4py; the probe must say so
        # rather than raise.
        assert have_mpi() in (True, False)

    @pytest.mark.skipif(have_mpi(), reason="mpi4py available: the "
                        "graceful-error path does not apply")
    def test_run_mpi_raises_cleanly_without_mpi(self):
        from repro.workloads import UniformWorkload

        with pytest.raises(RuntimeError, match="mpi4py"):
            run_mpi("TSS", UniformWorkload(10))

    @pytest.mark.skipif(not have_mpi(), reason="mpi4py not installed")
    def test_single_rank_rejected(self):  # pragma: no cover - MPI only
        from repro.workloads import UniformWorkload

        with pytest.raises(RuntimeError):
            run_mpi("TSS", UniformWorkload(10))
