"""Shared helpers for the repro-lint test suite.

Tests drive :func:`repro.lint.run_lint` two ways:

* over the static fixture files in ``tests/lint/fixtures/`` (one
  ``repNNN_bad.py`` / ``repNNN_good.py`` pair per rule, plus the
  ``proto_bad`` / ``proto_good`` trees for the cross-file rules);
* over throwaway module trees written to ``tmp_path`` (the synthetic
  violation tests).

Fixture files are *parsed, never imported*, so they are free to
reference undefined names (``ObsEvent``) and commit the exact sins
the rules exist to catch.
"""

from __future__ import annotations

import os

from repro.lint import LintConfig, run_lint

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint_fixture(name: str, **config):
    """Findings for one fixture file or tree under ``fixtures/``."""
    return run_lint(
        [os.path.join(FIXTURES, name)], LintConfig(**config)
    )


def lint_tree(tmp_path, sources: dict, **config):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it."""
    for rel, src in sources.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src, encoding="utf-8")
    return run_lint([tmp_path], LintConfig(**config))


def rules_of(findings) -> set:
    return {f.rule for f in findings}
