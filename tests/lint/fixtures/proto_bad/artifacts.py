"""CLI artifact menu out of sync with the dispatch chain."""

import argparse

ALL_ARTIFACTS = ("table1", "table3")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "artifact", choices=["table1", "figure", "all"],
    )
    return parser


def dispatch(artifact: str):
    if artifact == "table1":
        return "t1"
    # "table3" is never compared -> silently skipped by "all";
    # "figure" parses but has no arm either.
    return None
