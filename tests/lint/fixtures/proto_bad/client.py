"""Client speaking one op the daemon never dispatches."""


def ping(conn) -> None:
    conn.send({"op": "ping"})


def submit(conn, job) -> None:
    doc = {"job": job}
    doc["op"] = "submitt"   # typo -> REP305
    conn.send(doc)


def dispatch(op: str):
    if op == "statuss":     # typo'd arm -> REP305
        return "status"
    return None


def stream(op: str):
    if op in ("ping", "watchh"):    # typo'd alias -> REP305
        return "stream"
    return None
