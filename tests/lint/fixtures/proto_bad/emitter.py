"""Emits one declared kind and two that the schema never heard of."""

_SRC = "emitter"


def publish(bus, t: float) -> None:
    bus.push(ObsEvent("chunk", _SRC, t))
    bus.push(ObsEvent("chunkk", _SRC, t))          # typo -> REP301
    bus.push(ObsEvent(kind="progress", src=_SRC))  # undeclared -> REP301


def emit(kind: str, **payload):
    ...


def heartbeat() -> None:
    emit("heartbeatt")                             # typo -> REP301
