"""Schema authority for the bad fixture tree."""

EVENT_KINDS = frozenset({"chunk", "result"})
