"""Calculator table with one unreachable entry and a refusal-set
contradiction."""

CALCULATORS = {
    "TSS": "calc_tss",
    "ORPHAN": "calc_orphan",   # -> REP302 (no registered scheme)
    "S": "calc_s",             # -> REP302 (also in NON_PURE_SCHEMES)
}

NON_PURE_SCHEMES = frozenset({"S"})
