"""Wire-op authority for the bad fixture tree."""

OPS = frozenset({"ping", "submit"})
