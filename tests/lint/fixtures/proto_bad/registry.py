"""Scheme registry with one orphan scheme (no calculator, no refusal
entry)."""

SCHEMES = {
    "TSS": "trapezoid",
    "GHOST": "nowhere",   # -> REP302 (no calculator, not refused)
}
