"""Artifact menu, CLI choices and dispatch all in sync."""

import argparse

ALL_ARTIFACTS = ("table1", "figure")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "artifact", choices=["table1", "figure", "all"],
    )
    return parser


def dispatch(artifact: str):
    if artifact == "table1":
        return "t1"
    if artifact == "figure":
        return "fig"
    return None
