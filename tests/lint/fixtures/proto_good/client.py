"""Client and dispatch speaking only declared ops."""


def ping(conn) -> None:
    conn.send({"op": "ping"})


def submit(conn, job) -> None:
    doc = {"job": job}
    doc["op"] = "submit"
    conn.send(doc)


def dispatch(op: str):
    if op == "status":
        return "status"
    return None


def stream(op: str):
    if op in ("ping", "status"):
        return "stream"
    return None
