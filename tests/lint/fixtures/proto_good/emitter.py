"""Every emitted kind is declared in the schema."""

_SRC = "emitter"


def publish(bus, t: float) -> None:
    bus.push(ObsEvent("chunk", _SRC, t))
    bus.push(ObsEvent(kind="result", src=_SRC))


def emit(kind: str, **payload):
    ...


def heartbeat() -> None:
    emit("heartbeat")
