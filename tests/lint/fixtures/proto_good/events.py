"""Schema authority for the good fixture tree."""

EVENT_KINDS = frozenset({"chunk", "result", "heartbeat"})
