"""Calculator table consistent with the registry."""

CALCULATORS = {
    "TSS": "calc_tss",
}

NON_PURE_SCHEMES = frozenset({"S"})
