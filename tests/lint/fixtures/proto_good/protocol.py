"""Wire-op authority for the good fixture tree."""

OPS = frozenset({"ping", "submit", "status"})
