"""Registry partitioned exactly into calculators + refusals."""

SCHEMES = {
    "TSS": "trapezoid",
    "S": "static",
}
