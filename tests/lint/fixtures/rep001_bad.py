"""REP001 failing fixture: three spellings of the global RNG."""

import random
from random import shuffle

import numpy as np


def jitter() -> float:
    return random.random()


def scramble(xs: list) -> None:
    shuffle(xs)


def legacy_noise(n: int):
    np.random.seed(0)
    return np.random.rand(n)
