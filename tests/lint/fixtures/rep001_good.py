"""REP001 passing fixture: seeded generators threaded explicitly."""

import random

import numpy as np


def jitter(rng: random.Random) -> float:
    return rng.random()


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def noise(seed: int, n: int):
    return np.random.default_rng(seed).random(n)
