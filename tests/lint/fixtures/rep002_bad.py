"""REP002 failing fixture: seedless and entropy-backed constructors."""

import random

import numpy as np


def fresh() -> random.Random:
    return random.Random()


def fresh_np():
    return np.random.default_rng()


def entropy() -> random.Random:
    return random.SystemRandom()
