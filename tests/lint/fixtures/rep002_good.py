"""REP002 passing fixture: every constructor takes an explicit seed."""

import random

import numpy as np


def fresh(seed: int) -> random.Random:
    return random.Random(seed)


def fresh_np(seed: int):
    return np.random.default_rng(seed)


def derived(seed: int) -> random.Random:
    return random.Random(seed=seed)
