"""REP003 failing fixture: clock reads outside t/wall, and inside
digest-critical code."""

import time
import uuid

_SRC = "fixture"


def emit_bad(bus):
    # stamp= is a payload field -> enters the canonical stream.
    bus.push(ObsEvent("chunk", _SRC, 0.0, stamp=time.time()))


def tag_bad(bus):
    bus.push(ObsEvent(kind="result", src=_SRC, token=str(uuid.uuid4())))


def canonical_stream(events):
    # Any tainted call in a digest-critical module is flagged.
    cutoff = time.time()
    return [e for e in events if e.t < cutoff]
