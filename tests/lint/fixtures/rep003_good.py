"""REP003 passing fixture: clock reads confined to t/wall (which
canonical_stream strips), none in digest-critical code."""

import time

_SRC = "fixture"


def emit_ok(bus, t_sim: float):
    bus.push(ObsEvent("chunk", _SRC, time.time(), wall=time.time()))
    bus.push(ObsEvent(kind="result", src=_SRC, t=t_sim,
                      wall=time.time()))


def elapsed(started: float) -> float:
    # Tainted calls outside ObsEvent payloads are fine in a module
    # that is not digest-critical.
    return time.time() - started
