"""REP004 failing fixture: unordered set iteration in digest code."""


def canonical_stream(events):
    order = []
    for kind in {"chunk", "result"}:
        order.append(kind)
    labels = ",".join({e.src for e in events})
    flat = [k for k in set(order)]
    return order, labels, flat
