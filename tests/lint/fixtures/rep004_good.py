"""REP004 passing fixture: every set is sorted before iteration, and
set iteration outside digest-critical modules is not the rule's
business (this module IS digest-critical, so it must sort)."""


def canonical_stream(events):
    order = []
    for kind in sorted({"chunk", "result"}):
        order.append(kind)
    labels = ",".join(sorted({e.src for e in events}))
    flat = [k for k in sorted(set(order))]
    return order, labels, flat
