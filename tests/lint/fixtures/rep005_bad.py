"""REP005 failing fixture: salted builtin hash() in digest code."""


def stream_digest(events):
    return hash(tuple(e.kind for e in events))
