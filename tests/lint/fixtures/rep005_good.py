"""REP005 passing fixture: sha256 over canonical bytes; hash() only
inside __hash__ (where it is the protocol, not a digest input)."""

import hashlib


def stream_digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class Key(object):
    def __init__(self, kind: str) -> None:
        self.kind = kind

    def __hash__(self) -> int:
        return hash(self.kind)
