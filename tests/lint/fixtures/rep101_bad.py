"""REP101 failing fixture: acquire with no guaranteed release."""

import threading

_LOCK = threading.Lock()


def risky(shared: dict, key: str, value: object) -> None:
    _LOCK.acquire()
    shared[key] = value  # an exception here leaks the lock
    _LOCK.release()
