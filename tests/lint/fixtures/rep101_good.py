"""REP101 passing fixture: both sanctioned shapes."""

import threading

_LOCK = threading.Lock()


def with_statement(shared: dict, key: str, value: object) -> None:
    with _LOCK:
        shared[key] = value


def try_finally(shared: dict, key: str, value: object) -> None:
    _LOCK.acquire()
    try:
        shared[key] = value
    finally:
        _LOCK.release()


def acquire_inside_try(shared: dict, key: str) -> None:
    try:
        _LOCK.acquire()
        del shared[key]
    finally:
        _LOCK.release()
