"""REP102 failing fixture: pump thread started before the fork."""

import multiprocessing as mp
import threading


def start_pool(n: int, drain):
    pump = threading.Thread(target=drain, daemon=True)
    pump.start()
    procs = [mp.Process(target=drain) for _ in range(n)]
    for proc in procs:
        proc.start()
    return pump, procs
