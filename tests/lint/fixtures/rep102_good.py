"""REP102 passing fixture: processes first, threads after."""

import multiprocessing as mp
import threading


def start_pool(n: int, drain):
    procs = [mp.Process(target=drain) for _ in range(n)]
    for proc in procs:
        proc.start()
    pump = threading.Thread(target=drain, daemon=True)
    pump.start()
    return pump, procs
