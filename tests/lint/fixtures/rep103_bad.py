"""REP103 failing fixture: worker entry mutating module state."""

PENDING: dict = {}


def worker_main(idx: int) -> None:
    global TOTAL
    TOTAL = idx
    PENDING[idx] = "started"
