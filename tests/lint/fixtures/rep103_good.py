"""REP103 passing fixture: workers keep state local and ship it back
through the queue; only non-worker (parent-side) code touches the
module-level registry."""

PENDING: dict = {}


def admit(idx: int) -> None:
    # Parent-side bookkeeping: fine, this never runs post-fork.
    PENDING[idx] = "admitted"


def worker_main(idx: int, out_q) -> None:
    local: dict = {}
    local[idx] = "started"
    out_q.put((idx, local))
