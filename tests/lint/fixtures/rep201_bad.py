"""REP201 failing fixture: the loop blocked three ways."""

import subprocess
import time


async def handle(reader, writer):
    time.sleep(0.1)
    banner = open("/etc/motd").read()
    subprocess.run(["sync"])
    return banner
