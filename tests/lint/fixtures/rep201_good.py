"""REP201 passing fixture: async sleeps, and blocking work confined
to a nested sync helper (handed to an executor by the caller)."""

import asyncio
import time


async def handle(reader, writer):
    await asyncio.sleep(0.1)

    def blocking_part():
        # Inside a *sync* nested def: not this async frame's problem.
        time.sleep(0.1)
        return open("/etc/motd").read()

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, blocking_part)
