"""REP202 failing fixture: coroutine objects built and dropped."""


async def pump() -> None:
    ...


def kick() -> None:
    pump()


class Daemon(object):
    async def drain(self) -> None:
        ...

    def stop(self) -> None:
        self.drain()
