"""REP202 passing fixture: every coroutine awaited or task-wrapped."""

import asyncio


async def pump() -> None:
    ...


async def kick() -> None:
    await pump()


class Daemon(object):
    async def drain(self) -> None:
        ...

    async def stop(self) -> None:
        await self.drain()

    def schedule(self) -> None:
        self._task = asyncio.create_task(self.drain())
