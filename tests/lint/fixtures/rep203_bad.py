"""REP203 failing fixture: task handle dropped on the floor."""

import asyncio


async def pump() -> None:
    ...


async def serve() -> None:
    asyncio.create_task(pump())
    asyncio.ensure_future(pump())
