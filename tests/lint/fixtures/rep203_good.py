"""REP203 passing fixture: handles kept (and awaited on shutdown)."""

import asyncio


async def pump() -> None:
    ...


async def serve(tasks: set) -> None:
    handle = asyncio.create_task(pump())
    tasks.add(handle)
    await handle
