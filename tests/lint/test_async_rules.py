"""REP2xx async hygiene rules against the fixture pairs."""

from __future__ import annotations

from .conftest import lint_fixture, rules_of


class TestRep201BlockingInAsync:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep201_bad.py")
            if f.rule == "REP201"
        ]
        # time.sleep, open(), subprocess.run
        assert len(findings) == 3
        assert any("time.sleep" in f.message for f in findings)

    def test_good_fixture_passes(self):
        # Blocking work lives in a nested *sync* def handed to an
        # executor -- not this async frame's problem.
        assert "REP201" not in rules_of(lint_fixture("rep201_good.py"))


class TestRep202UnawaitedCoroutine:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep202_bad.py")
            if f.rule == "REP202"
        ]
        # bare pump() and bare self.drain()
        assert len(findings) == 2
        assert any("'pump(...)'" in f.message for f in findings)

    def test_good_fixture_passes(self):
        assert "REP202" not in rules_of(lint_fixture("rep202_good.py"))


class TestRep203DroppedTaskHandle:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep203_bad.py")
            if f.rule == "REP203"
        ]
        # create_task and ensure_future, both dropped
        assert len(findings) == 2

    def test_good_fixture_passes(self):
        assert "REP203" not in rules_of(lint_fixture("rep203_good.py"))
