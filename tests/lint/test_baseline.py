"""Baseline round-trip, fingerprint stability, and failure modes."""

from __future__ import annotations

import json

import pytest

from repro.lint import load_baseline, write_baseline
from repro.lint.baseline import apply_baseline

from .conftest import lint_tree

_BAD = 'def canonical_stream(events):\n    return hash(events)\n'


def test_round_trip_suppresses_everything(tmp_path):
    findings = lint_tree(tmp_path / "tree", {"mod.py": _BAD})
    assert findings
    baseline = tmp_path / "baseline.json"
    count = write_baseline(baseline, findings)
    assert count == len(findings)
    known = load_baseline(baseline)
    new, suppressed = apply_baseline(findings, known)
    assert new == []
    assert len(suppressed) == len(findings)


def test_fingerprint_survives_line_drift(tmp_path):
    tree = tmp_path / "tree"
    before = lint_tree(tree, {"mod.py": _BAD})
    # Same offending line in the same file, pushed down by an
    # unrelated edit above it: fingerprints must not churn.
    after = lint_tree(tree, {"mod.py": "PREFIX = 1\n\n\n" + _BAD})
    assert [f.fingerprint for f in before] \
        == [f.fingerprint for f in after]
    assert [f.line for f in before] != [f.line for f in after]


def test_touching_the_line_resurfaces_the_finding(tmp_path):
    tree = tmp_path / "tree"
    before = lint_tree(tree, {"mod.py": _BAD})
    edited = _BAD.replace("hash(events)", "hash(tuple(events))")
    after = lint_tree(tree, {"mod.py": edited})
    assert {f.fingerprint for f in before} \
        .isdisjoint({f.fingerprint for f in after})


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


def test_wrong_version_rejected(tmp_path):
    target = tmp_path / "old.json"
    target.write_text(
        json.dumps({"version": 99, "findings": []}), encoding="utf-8"
    )
    with pytest.raises(ValueError):
        load_baseline(target)


def test_baseline_file_is_human_auditable(tmp_path):
    findings = lint_tree(tmp_path / "tree", {"mod.py": _BAD})
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, findings)
    doc = json.loads(baseline.read_text(encoding="utf-8"))
    entry = doc["findings"][0]
    # The rule id, path and message ride along so a reviewer can audit
    # the file without re-running the tool.
    assert {"rule", "path", "line", "message", "fingerprint"} \
        <= set(entry)


def test_run_lint_importable_from_package_root():
    # The public surface the CI job scripts against.
    from repro import lint

    assert callable(lint.run_lint)
    assert "REP001" in lint.rule_ids()
