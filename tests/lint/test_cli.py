"""The ``repro-lint`` console entry point: exit codes and formats."""

from __future__ import annotations

import json

from repro.lint.cli import main

CLEAN = "def add(a, b):\n    return a + b\n"
DIRTY = (
    "import random\n"
    "def canonical_stream(events):\n"
    "    random.shuffle(events)\n"
    "    return hash(tuple(e.kind for e in events))\n"
)


def _write(tmp_path, name: str, source: str) -> str:
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return str(target)


def test_clean_path_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", CLEAN)
    assert main([path]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_findings_exit_one_with_rule_ids(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY)
    assert main([path]) == 1
    out = capsys.readouterr().out
    # The seeded violations surface as exactly the expected rules.
    assert "REP001" in out  # random.shuffle
    assert "REP005" in out  # hash() in digest-critical code
    assert "finding(s)" in out


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_write_then_apply_baseline(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY)
    baseline = str(tmp_path / "baseline.json")
    assert main([path, "--baseline", baseline,
                 "--write-baseline"]) == 0
    wrote = capsys.readouterr().out
    assert "wrote" in wrote
    # With the baseline applied the same findings are suppressed...
    assert main([path, "--baseline", baseline]) == 0
    assert "baselined" in capsys.readouterr().out
    # ...but a fresh violation still fails.
    _write(tmp_path, "dirty.py",
           DIRTY + "def worker_main():\n    global STATE\n")
    assert main([path, "--baseline", baseline]) == 1


def test_corrupt_baseline_exits_two(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", CLEAN)
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{\"version\": 7}", encoding="utf-8")
    assert main([path, "--baseline", str(baseline)]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_json_format(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY)
    assert main([path, "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in doc["findings"]}
    assert {"REP001", "REP005"} <= rules
    assert doc["suppressed"] == 0


def test_select_and_ignore(tmp_path):
    path = _write(tmp_path, "dirty.py", DIRTY)
    # Selecting only the async family finds nothing here.
    assert main([path, "--select", "REP2"]) == 0
    # Ignoring the determinism family likewise.
    assert main([path, "--ignore", "REP0"]) == 0
    assert main([path, "--ignore", "REP9"]) == 1


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP000", "REP001", "REP101", "REP201", "REP301"):
        assert rule_id in out


def test_syntax_error_reported_as_rep000(tmp_path, capsys):
    path = _write(tmp_path, "broken.py", "def broken(:\n")
    assert main([path]) == 1
    assert "REP000" in capsys.readouterr().out
