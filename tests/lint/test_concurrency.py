"""REP1xx fork & lock safety rules against the fixture pairs."""

from __future__ import annotations

from .conftest import lint_fixture, lint_tree, rules_of


class TestRep101BareAcquire:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep101_bad.py")
            if f.rule == "REP101"
        ]
        assert len(findings) == 1
        assert "_LOCK.acquire()" in findings[0].message

    def test_good_fixture_passes(self):
        assert "REP101" not in rules_of(lint_fixture("rep101_good.py"))


class TestRep102ThreadBeforeFork:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep102_bad.py")
            if f.rule == "REP102"
        ]
        assert len(findings) == 1
        assert "thread" in findings[0].message

    def test_good_fixture_passes(self):
        assert "REP102" not in rules_of(lint_fixture("rep102_good.py"))

    def test_module_level_thread_always_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "mod.py": (
                "import multiprocessing as mp\n"
                "import threading\n"
                "PUMP = threading.Thread(target=print)\n"
                "def spawn():\n"
                "    return mp.Process(target=print)\n"
            ),
        })
        assert "REP102" in rules_of(findings)

    def test_non_forking_module_exempt(self, tmp_path):
        # Same thread-then-nothing shape, but the module never forks,
        # so REP102 has nothing to say.
        findings = lint_tree(tmp_path, {
            "mod.py": (
                "import threading\n"
                "PUMP = threading.Thread(target=print)\n"
            ),
        })
        assert "REP102" not in rules_of(findings)


class TestRep103WorkerGlobalMutation:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep103_bad.py")
            if f.rule == "REP103"
        ]
        # the ``global`` statement and the PENDING[...] mutation
        assert len(findings) == 2

    def test_good_fixture_passes(self):
        assert "REP103" not in rules_of(lint_fixture("rep103_good.py"))
