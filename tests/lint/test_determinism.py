"""REP0xx determinism rules against the fixture pairs."""

from __future__ import annotations

from .conftest import lint_fixture, rules_of


class TestRep001GlobalRng:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep001_bad.py")
            if f.rule == "REP001"
        ]
        # random.random(), bare shuffle(), np.random.seed, np.random.rand
        assert len(findings) == 4
        assert all("process-global RNG" in f.message for f in findings)

    def test_good_fixture_passes(self):
        assert "REP001" not in rules_of(lint_fixture("rep001_good.py"))


class TestRep002UnseededRng:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep002_bad.py")
            if f.rule == "REP002"
        ]
        assert len(findings) == 3
        assert any("SystemRandom" in f.message for f in findings)

    def test_good_fixture_passes(self):
        assert "REP002" not in rules_of(lint_fixture("rep002_good.py"))


class TestRep003ClockIntoDigest:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep003_bad.py")
            if f.rule == "REP003"
        ]
        # stamp=time.time(), token=uuid4, and the digest-critical
        # time.time() in canonical_stream
        assert len(findings) == 3

    def test_good_fixture_passes(self):
        # t/wall are the sanctioned clock sinks; the module also reads
        # the clock outside any event, which is fine off the digest path.
        assert "REP003" not in rules_of(lint_fixture("rep003_good.py"))


class TestRep004SetIteration:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep004_bad.py")
            if f.rule == "REP004"
        ]
        # for-loop over a set display, join() over a set comprehension,
        # comprehension over set(...)
        assert len(findings) == 3

    def test_good_fixture_passes(self):
        assert "REP004" not in rules_of(lint_fixture("rep004_good.py"))


class TestRep005BuiltinHash:
    def test_bad_fixture_fails(self):
        findings = [
            f for f in lint_fixture("rep005_bad.py")
            if f.rule == "REP005"
        ]
        assert len(findings) == 1
        assert "PYTHONHASHSEED" in findings[0].message

    def test_good_fixture_passes(self):
        # hash() inside __hash__ is the protocol, not a digest input.
        assert "REP005" not in rules_of(lint_fixture("rep005_good.py"))
