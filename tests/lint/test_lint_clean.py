"""Tier-1 gate: the repo's own source must lint clean.

This is the test that makes every other rule test matter: the rules
are not aspirational, the codebase actually satisfies them, and any
PR that introduces a violation fails here (or consciously baselines
it and faces the reviewer).
"""

from __future__ import annotations

import os

from repro.lint import LintConfig, run_lint

_REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
_SRC = os.path.join(_REPO, "src")
_TESTS = os.path.join(_REPO, "tests")


def test_repo_source_is_lint_clean():
    findings = run_lint([_SRC], LintConfig(tests_dir=_TESTS))
    assert findings == [], "\n" + "\n".join(
        f.render() for f in findings
    )


def test_role_discovery_finds_the_real_authorities():
    """Content-based discovery locates this repo's actual schema
    modules -- the cross-file rules are checking something real."""
    from repro.lint.engine import parse_modules

    modules, parse_errors = parse_modules([_SRC])
    assert parse_errors == []
    declared: dict = {}
    for mod in modules:
        for name in mod.protocol_sets:
            declared.setdefault(name, set()).add(
                os.path.basename(mod.path)
            )
    assert "events.py" in declared.get("EVENT_KINDS", set())
    assert "registry.py" in declared.get("SCHEMES", set())
    assert "kernel.py" in declared.get("CALCULATORS", set())
    assert "kernel.py" in declared.get("NON_PURE_SCHEMES", set())
    assert "protocol.py" in declared.get("OPS", set())
    digest_modules = {
        os.path.basename(m.path) for m in modules if m.digest_critical
    }
    assert "export.py" in digest_modules
    fork_modules = {
        os.path.basename(m.path) for m in modules if m.fork_sensitive
    }
    assert fork_modules, "no fork-sensitive module discovered"


def test_registry_partition_matches_kernel():
    """The invariant REP302 enforces, restated dynamically: SCHEMES
    splits exactly into CALCULATORS and NON_PURE_SCHEMES."""
    from repro.core import registry
    from repro.core.kernel import CALCULATORS, NON_PURE_SCHEMES

    schemes = set(registry.SCHEMES)
    assert schemes == set(CALCULATORS) | set(NON_PURE_SCHEMES)
    assert not set(CALCULATORS) & set(NON_PURE_SCHEMES)
