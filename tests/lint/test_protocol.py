"""REP3xx cross-file protocol rules: fixture trees + synthetic trees.

The synthetic-tree test is the ISSUE's acceptance check: a temp module
tree that registers a scheme with no kernel calculator and emits an
ObsEvent kind missing from the schema must produce *exactly*
``{REP301, REP302}`` -- nothing more (no false positives from the
other rules), nothing less.
"""

from __future__ import annotations

from .conftest import lint_fixture, lint_tree, rules_of


class TestProtoFixtureTrees:
    def test_bad_tree_fails_per_rule(self):
        findings = lint_fixture("proto_bad")
        by_rule: dict = {}
        for f in findings:
            by_rule.setdefault(f.rule, []).append(f)
        # REP301: ObsEvent("chunkk"), kind="progress", emit("heartbeatt")
        assert len(by_rule.get("REP301", [])) == 3
        # REP302: GHOST unbacked, ORPHAN unreachable, S unreachable,
        # S in both CALCULATORS and NON_PURE_SCHEMES
        assert len(by_rule.get("REP302", [])) == 4
        # REP303: table3 not offered, figure undispatched, table3
        # never compared
        assert len(by_rule.get("REP303", [])) == 3
        # REP305: "submitt" assignment, the "statuss" dispatch
        # arm, and the "watchh" alias in the membership test
        assert len(by_rule.get("REP305", [])) == 3

    def test_bad_tree_messages_name_the_authority(self):
        findings = lint_fixture("proto_bad")
        rep301 = [f for f in findings if f.rule == "REP301"]
        assert all("EVENT_KINDS" in f.message for f in rep301)
        rep305 = [f for f in findings if f.rule == "REP305"]
        assert all("OPS" in f.message for f in rep305)

    def test_good_tree_is_clean(self):
        findings = lint_fixture("proto_good")
        assert findings == [], [f.render() for f in findings]


class TestSyntheticTree:
    """The ISSUE acceptance scenario, built from scratch in tmp_path."""

    def test_orphan_scheme_and_unknown_kind_exact_rule_ids(
        self, tmp_path
    ):
        findings = lint_tree(tmp_path, {
            "pkg/events.py": (
                'EVENT_KINDS = frozenset({"chunk", "result"})\n'
            ),
            "pkg/registry.py": (
                "SCHEMES = {\n"
                '    "TSS": "trapezoid",\n'
                '    "GHOST": "unbacked",\n'
                "}\n"
            ),
            "pkg/kernel.py": (
                'CALCULATORS = {"TSS": "calc_tss"}\n'
            ),
            "pkg/emitter.py": (
                "def publish(bus, t):\n"
                '    bus.push(ObsEvent("mystery", "src", t))\n'
            ),
        })
        assert rules_of(findings) == {"REP301", "REP302"}
        rep301 = [f for f in findings if f.rule == "REP301"]
        rep302 = [f for f in findings if f.rule == "REP302"]
        assert len(rep301) == 1 and "'mystery'" in rep301[0].message
        assert len(rep302) == 1 and "'GHOST'" in rep302[0].message
        assert rep301[0].path.endswith("emitter.py")
        assert rep302[0].path.endswith("registry.py")

    def test_refusal_set_entry_silences_rep302(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/registry.py": (
                'SCHEMES = {"TSS": "t", "GHOST": "g"}\n'
            ),
            "pkg/kernel.py": (
                'CALCULATORS = {"TSS": "calc_tss"}\n'
                'NON_PURE_SCHEMES = frozenset({"GHOST"})\n'
            ),
        })
        assert "REP302" not in rules_of(findings)

    def test_no_schema_no_rep301(self, tmp_path):
        # Trees without an EVENT_KINDS authority are not judged: the
        # rule cannot know the schema, so it stays silent rather than
        # flagging everything.
        findings = lint_tree(tmp_path, {
            "pkg/emitter.py": (
                "def publish(bus, t):\n"
                '    bus.push(ObsEvent("anything", "src", t))\n'
            ),
        })
        assert "REP301" not in rules_of(findings)

    def test_scheme_tuple_is_not_the_registry(self, tmp_path):
        # Experiment modules reuse the name SCHEMES for column tuples;
        # only dict displays are the authority (the false positive the
        # first run over this repo actually hit).
        findings = lint_tree(tmp_path, {
            "pkg/kernel.py": 'CALCULATORS = {"TSS": "calc"}\n',
            "pkg/registry.py": 'SCHEMES = {"TSS": "t"}\n',
            "pkg/table.py": 'SCHEMES = ("TSS", "TreeS")\n',
        })
        assert "REP302" not in rules_of(findings)


class TestRep304SchemeTestCoverage:
    def test_unreferenced_scheme_flagged(self, tmp_path):
        src = tmp_path / "src"
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_schemes.py").write_text(
            'def test_tss():\n    assert "TSS"\n', encoding="utf-8"
        )
        src.mkdir()
        (src / "registry.py").write_text(
            'SCHEMES = {"TSS": "t", "ZZZQ": "z"}\n', encoding="utf-8"
        )
        (src / "kernel.py").write_text(
            'CALCULATORS = {"TSS": "c", "ZZZQ": "c"}\n',
            encoding="utf-8",
        )
        from repro.lint import LintConfig, run_lint

        findings = run_lint(
            [src], LintConfig(tests_dir=str(tests))
        )
        rep304 = [f for f in findings if f.rule == "REP304"]
        assert len(rep304) == 1
        assert "'ZZZQ'" in rep304[0].message

    def test_without_tests_dir_rule_skipped(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "registry.py": 'SCHEMES = {"ZZZQ": "z"}\n',
            "kernel.py": 'CALCULATORS = {"ZZZQ": "c"}\n',
        })
        assert "REP304" not in rules_of(findings)
