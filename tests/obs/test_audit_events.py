"""audit_events: the trace auditor consuming only the unified stream."""

from __future__ import annotations

import pytest

from repro.obs import ObsEvent
from repro.verify import AuditError, audit_events


def _result(start, stop, t=0.0, worker=0, source="sim.master"):
    return ObsEvent("result", source, t, worker=worker,
                    start=start, stop=stop)


def test_clean_stream_passes():
    events = [
        ObsEvent("request", "sim.master", 0.0, worker=0),
        _result(0, 4, t=0.5),
        _result(4, 10, t=1.0, worker=1),
    ]
    report = audit_events(events, total=10)
    assert report.ok
    assert "schema" in report.checks and "coverage" in report.checks


def test_accepts_dict_events():
    events = [_result(0, 10).to_dict()]
    assert audit_events(events, total=10).ok


def test_gap_and_overlap_are_violations():
    gap = audit_events([_result(0, 4), _result(6, 10)], total=10)
    assert not gap.ok and any("gap" in v for v in gap.violations)
    overlap = audit_events([_result(0, 6), _result(4, 10)], total=10)
    assert not overlap.ok
    assert any("overlap" in v for v in overlap.violations)
    with pytest.raises(AuditError):
        overlap.raise_if_failed()


def test_schema_violations_short_circuit():
    report = audit_events(
        [ObsEvent("banana", "sim.master", 0.0)], total=0
    )
    assert not report.ok
    assert report.checks == ["schema"]


def test_single_clock_sources_must_not_regress():
    events = [_result(0, 5, t=2.0), _result(5, 10, t=1.0)]
    report = audit_events(events, total=10)
    assert any("regress" in v for v in report.violations)


def test_worker_process_clocks_may_reset():
    # a chaos respawn restarts the per-process clock: legal
    events = [
        _result(0, 5, t=2.0, source="runtime.decentral"),
        _result(5, 10, t=0.1, source="runtime.decentral"),
    ]
    assert audit_events(events, total=10).ok


def test_conformance_replay_catches_moved_cut_points():
    # GSS on 10 iterations, 2 workers: 5, 3, 1, 1 -> cuts {0,5,8,9,10}
    good = [
        ObsEvent("request", "sim.master", 0.0, worker=1),
        _result(0, 5), _result(5, 8, worker=1),
        _result(8, 9), _result(9, 10, worker=1),
    ]
    assert audit_events(good, total=10, scheme="GSS").ok
    moved = [
        ObsEvent("request", "sim.master", 0.0, worker=1),
        _result(0, 6), _result(6, 8, worker=1),
        _result(8, 9), _result(9, 10, worker=1),
    ]
    report = audit_events(moved, total=10, scheme="GSS")
    assert any("diverge" in v for v in report.violations)


def test_worker_count_inferred_from_all_event_kinds():
    # GSS on 10 iterations with THREE workers cuts 4, 2, 2, 1, 1 --
    # but worker 2 never won a chunk.  Its request event must still
    # count toward the replay's worker count, or the auditor would
    # replay a two-worker ladder and report a phantom divergence.
    events = [
        ObsEvent("request", "sim.master", 0.0, worker=2),
        _result(0, 4), _result(4, 6, worker=1),
        _result(6, 8), _result(8, 9, worker=1), _result(9, 10),
    ]
    assert audit_events(events, total=10, scheme="GSS").ok
