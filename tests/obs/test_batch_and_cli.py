"""Batch-layer event capture and the trace-report CLI artifact."""

from __future__ import annotations

import json

import pytest

from repro.batch import SimJob, run_batch
from repro.experiments.runner import main
from repro.obs import read_jsonl, stream_digest, validate_event
from repro.simulation import ClusterSpec, NodeSpec
from repro.workloads import UniformWorkload

WL = UniformWorkload(size=100, unit=1e-5)


def _cluster():
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(2)]
    )


def test_event_engine_is_an_alias_that_keeps_keys_stable():
    base = SimJob("TSS", WL, _cluster())
    alias = SimJob("TSS", WL, _cluster(), engine="event")
    assert alias.engine == "master"
    assert alias.key == base.key


def test_collect_events_marks_the_key_and_attaches_the_trace():
    base = SimJob("TSS", WL, _cluster())
    traced = SimJob("TSS", WL, _cluster(), collect_events=True)
    assert traced.key != base.key
    assert "|events" in traced.describe()

    plain, with_trace = run_batch([base, traced])
    assert plain.obs_events is None
    assert with_trace.obs_events
    for ev in with_trace.obs_events:
        validate_event(ev)
    # the trace does not perturb the simulated outcome
    assert plain.t_p == with_trace.t_p


def test_collect_events_survives_the_process_pool():
    jobs = [
        SimJob("TSS", WL, _cluster(), collect_events=True),
        SimJob("GSS", WL, _cluster(), engine="decentral",
               collect_events=True),
    ]
    inline = run_batch(jobs, n_jobs=1)
    pooled = run_batch(jobs, n_jobs=2)
    for a, b in zip(inline, pooled):
        assert a.obs_events and b.obs_events
        assert stream_digest(a.obs_events) == stream_digest(b.obs_events)


def test_trace_report_cli_demo_scenario(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace-chrome.json"
    rc = main([
        "trace-report",
        "--trace-out", str(jsonl),
        "--chrome-out", str(chrome),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "IDENTICAL" in out
    assert "sim.master: OK" in out
    assert "runtime.decentral: OK" in out
    # both exports parse
    events = read_jsonl(jsonl)
    assert events
    for ev in events:
        validate_event(ev)
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]


def test_trace_report_cli_audits_an_existing_file(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    assert main(["trace-report", "--trace-out", str(jsonl)]) == 0
    capsys.readouterr()
    rc = main(["trace-report", "--trace", str(jsonl)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK" in out and "VIOLATION" not in out


def test_trace_report_cli_flags_a_corrupt_ledger(tmp_path, capsys):
    jsonl = tmp_path / "bad.jsonl"
    jsonl.write_text(
        '{"kind": "result", "source": "sim.master", "t": 0.0, '
        '"worker": 0, "start": 0, "stop": 4}\n'
        '{"kind": "result", "source": "sim.master", "t": 1.0, '
        '"worker": 1, "start": 2, "stop": 8}\n'
    )
    rc = main(["trace-report", "--trace", str(jsonl)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "overlap" in out


def test_log_level_flag_reaches_the_logging_layer(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    rc = main([
        "trace-report", "--trace-out", str(jsonl),
        "--log-level", "info",
    ])
    captured = capsys.readouterr()
    assert rc == 0
    # chaos injections from the demo scenario surface as INFO records
    # on stderr, never polluting the stdout artifact
    assert "repro.chaos" in captured.err
    assert "repro.chaos" not in captured.out
