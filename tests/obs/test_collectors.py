"""Collector tests: truthiness contract, buffering, JSONL sink."""

from __future__ import annotations

import threading

from repro.obs import (
    NULL,
    BufferedCollector,
    JsonlCollector,
    NullCollector,
    ObsEvent,
    capture,
    read_jsonl,
    resolve,
)


def _ev(i=0):
    return ObsEvent("request", "sim.master", float(i), worker=i)


def test_null_collector_is_falsy():
    assert not NULL
    assert not NullCollector()


def test_empty_buffered_collector_is_truthy():
    # Regression: BufferedCollector defines __len__, which would make
    # an *empty* collector falsy and silently disable every emission
    # site's `if self.obs:` gate for the first event of a run.
    trace = BufferedCollector()
    assert len(trace) == 0
    assert trace
    trace.emit(_ev())
    assert trace and len(trace) == 1


def test_resolve_normalizes_none_to_null():
    assert resolve(None) is NULL
    trace = BufferedCollector()
    assert resolve(trace) is trace


def test_null_emit_is_a_no_op():
    NULL.emit(_ev())
    NULL.flush()
    NULL.close()


def test_buffered_extend_and_by_kind():
    trace = BufferedCollector()
    trace.emit(_ev(1))
    trace.extend([
        ObsEvent("result", "sim.master", 1.0, worker=0, start=0, stop=4),
    ])
    assert len(trace) == 2
    assert [e.kind for e in trace] == ["request", "result"]
    assert len(trace.by_kind("result")) == 1


def test_capture_context_manager():
    with capture() as trace:
        trace.emit(_ev())
    assert len(trace.events) == 1


def test_jsonl_collector_round_trips(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlCollector(path, flush_every=2)
    events = [_ev(i) for i in range(5)]
    for ev in events:
        sink.emit(ev)
    sink.close()
    assert read_jsonl(path) == events


def test_jsonl_collector_creates_file_eagerly(tmp_path):
    path = tmp_path / "empty.jsonl"
    JsonlCollector(path)
    assert path.exists()
    assert read_jsonl(path) == []


def test_jsonl_collector_flush_threshold(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlCollector(path, flush_every=3)
    sink.emit(_ev(0))
    sink.emit(_ev(1))
    assert read_jsonl(path) == []  # still buffered
    sink.emit(_ev(2))              # hits the threshold
    assert len(read_jsonl(path)) == 3


def test_jsonl_collector_concurrent_writers_interleave_whole_lines(
    tmp_path,
):
    path = tmp_path / "trace.jsonl"
    sinks = [JsonlCollector(path, flush_every=1) for _ in range(4)]

    def pump(sink, base):
        for i in range(50):
            sink.emit(_ev(base + i))

    threads = [
        threading.Thread(target=pump, args=(sink, 1000 * n))
        for n, sink in enumerate(sinks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for sink in sinks:
        sink.close()
    events = read_jsonl(path)
    assert len(events) == 200
    # every line decoded as a schema event => no torn writes
    assert {e.worker for e in events} == {
        1000 * n + i for n in range(4) for i in range(50)
    }
