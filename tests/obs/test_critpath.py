"""Critical-path explainer tests (repro.obs.critpath).

The acceptance invariants: on a fault-free master-sim DES trace the
report's makespan equals the analytic fast path's t_p exactly, the
categories tile 100% of each worker's span, and the fast-path drift
is identically zero.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.chaos import FaultPlan
from repro.obs import (
    CATEGORIES,
    ObsEvent,
    critical_path,
    fastpath_drift,
)
from repro.service.jobs import job_from_spec

SPEC = {
    "scheme": "TSS",
    "workload": {"kind": "uniform", "size": 400, "unit": 1e-4},
    "cluster": {"workers": 4},
}


def _traced(spec=SPEC, **params):
    job = job_from_spec(dict(spec))
    if params:
        job = dataclasses.replace(
            job, params={**job.params, **params}
        )
    return job, job.run()


class TestSyntheticStreams:
    def test_empty_stream(self):
        rep = critical_path([])
        assert rep.makespan == 0.0
        assert rep.workers == []
        assert rep.chain == []

    def test_single_cycle_attribution(self):
        events = [
            ObsEvent("request", "sim.master", 0.0, worker=0),
            ObsEvent("assign", "sim.master", 1.0, worker=0,
                     start=0, stop=8),
            ObsEvent("compute", "sim.master", 2.0, worker=0,
                     start=0, stop=8, value=3.0),
            ObsEvent("result", "sim.master", 6.0, worker=0,
                     start=0, stop=8),
        ]
        rep = critical_path(events)
        assert rep.makespan == 6.0
        (w,) = rep.workers
        # request->assign network 1s, assign->compute network 1s,
        # compute 3s, compute-end->result network 1s
        assert w.categories["network"] == pytest.approx(3.0)
        assert w.categories["compute"] == pytest.approx(3.0)
        assert sum(w.categories.values()) == pytest.approx(w.span)
        assert [c.kind for c in rep.chain] == [
            "result", "compute", "assign", "request",
        ]

    def test_fault_recovery_window(self):
        events = [
            ObsEvent("request", "sim.master", 0.0, worker=0),
            ObsEvent("fault", "chaos", 1.0, worker=0, detail="death"),
            ObsEvent("restart", "sim.master", 5.0, worker=0),
            ObsEvent("assign", "sim.master", 6.0, worker=0,
                     start=0, stop=8),
            ObsEvent("compute", "sim.master", 7.0, worker=0,
                     start=0, stop=8, value=1.0),
            ObsEvent("result", "sim.master", 9.0, worker=0,
                     start=0, stop=8),
        ]
        rep = critical_path(events)
        (w,) = rep.workers
        assert w.categories["fault-recovery"] == pytest.approx(4.0)
        assert sum(w.categories.values()) == pytest.approx(w.span)

    def test_transparent_kinds_do_not_break_gaps(self):
        events = [
            ObsEvent("request", "sim.master", 0.0, worker=0),
            ObsEvent("heartbeat", "runtime.master", 0.5, worker=0),
            ObsEvent("acp-update", "sim.master", 0.7, worker=0, acp=4),
            ObsEvent("assign", "sim.master", 2.0, worker=0,
                     start=0, stop=8),
        ]
        rep = critical_path(events)
        (w,) = rep.workers
        # the whole [0, 2) gap is one network wait
        assert w.categories["network"] == pytest.approx(2.0)

    def test_unattributed_events_ignored(self):
        rep = critical_path([
            ObsEvent("fault", "chaos", 1.0, detail="stall", value=2.0),
        ])
        assert rep.workers == []


class TestMasterSimAcceptance:
    def test_makespan_equals_fastpath_t_p_exactly(self):
        job, res = _traced()
        rep = critical_path(res.obs_events)
        assert rep.makespan == res.t_p
        fast = dataclasses.replace(job, collect_events=False).run()
        assert rep.makespan == fast.t_p  # bit-exact, not approx

    def test_categories_tile_every_worker_span(self):
        _, res = _traced()
        rep = critical_path(res.obs_events)
        assert len(rep.workers) == 4
        for w in rep.workers:
            assert set(w.categories) <= set(CATEGORIES)
            assert math.isclose(
                sum(w.categories.values()), w.span, rel_tol=1e-12
            )
            assert w.chunks > 0 and w.iterations > 0

    def test_fastpath_drift_is_zero_fault_free(self):
        job, res = _traced()
        fast = dataclasses.replace(job, collect_events=False).run()
        drift = fastpath_drift(res.obs_events, fast.chunks)
        assert drift.ok
        assert drift.max_abs_drift == 0.0
        assert drift.matched == len(fast.chunks)
        assert drift.unmatched_observed == 0
        assert drift.unmatched_predicted == 0

    def test_drift_flags_perturbed_prediction(self):
        job, res = _traced()
        fast = dataclasses.replace(job, collect_events=False).run()
        perturbed = [
            dataclasses.replace(
                c, completed_at=c.completed_at + 0.001
            )
            for c in fast.chunks
        ]
        drift = fastpath_drift(res.obs_events, perturbed)
        assert not drift.ok
        assert drift.max_abs_drift == pytest.approx(0.001)

    def test_blocking_chain_reaches_back_to_first_request(self):
        _, res = _traced()
        rep = critical_path(res.obs_events)
        assert rep.chain[0].kind == "result"
        assert rep.chain[-1].kind == "request"
        # one worker's chain, cycles of compute<-assign<-request
        workers = {c.worker for c in rep.chain}
        assert len(workers) == 1
        assert rep.chain[0].t == rep.makespan

    def test_imbalance_metrics_populated(self):
        _, res = _traced()
        rep = critical_path(res.obs_events)
        assert rep.finish_max == rep.makespan
        assert 0.0 < rep.finish_mean <= rep.finish_max
        assert rep.finish_spread >= 0.0
        assert rep.imbalance >= 0.0
        assert rep.busy_sigma >= 0.0

    def test_report_serializes_and_summarizes(self):
        import json

        _, res = _traced()
        rep = critical_path(res.obs_events)
        doc = json.loads(json.dumps(rep.to_dict()))
        assert doc["makespan"] == rep.makespan
        assert len(doc["workers"]) == 4
        assert doc["chain"][0]["kind"] == "result"
        text = rep.summary()
        assert "makespan" in text and "worker 0" in text
        assert "blocking chain" in text


class TestChaosStream:
    def test_chaos_trace_still_tiles_and_reports(self):
        plan = FaultPlan.random(seed=7, workers=4, horizon=0.01)
        _, res = _traced(chaos=plan)
        rep = critical_path(res.obs_events)
        assert rep.makespan == res.t_p
        for w in rep.workers:
            assert math.isclose(
                sum(w.categories.values()), w.span, rel_tol=1e-9
            )
