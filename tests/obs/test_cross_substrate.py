"""The acceptance property: one schema, directly diffable traces.

The canonical stream (``result`` intervals, clocks and worker identity
stripped) must be byte-identical across every substrate running the
same deterministic scheme -- including under a seeded chaos plan,
because requeued intervals are reassigned verbatim on every substrate.
"""

from __future__ import annotations

from repro.chaos import FaultPlan
from repro.decentral import run_decentral, simulate_decentral
from repro.obs import capture, canonical_stream, stream_digest, to_jsonl
from repro.runtime import run_parallel
from repro.simulation import ClusterSpec, NodeSpec, simulate
from repro.workloads import UniformWorkload

WL = UniformWorkload(size=200, unit=1e-5)


def _cluster(n=3):
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(n)]
    )


def _digest(trace):
    return stream_digest(trace.events)


def test_all_substrates_agree_on_the_canonical_stream():
    with capture() as sim_trace:
        simulate("TSS", WL, _cluster(), collector=sim_trace)
    with capture() as dec_sim_trace:
        simulate_decentral("TSS", WL, _cluster(), collector=dec_sim_trace)
    with capture() as run_trace:
        run_parallel("TSS", WL, 3, collector=run_trace)
    with capture() as dec_run_trace:
        run_decentral("TSS", WL, 3, collector=dec_run_trace)

    digests = {
        "sim.master": _digest(sim_trace),
        "sim.decentral": _digest(dec_sim_trace),
        "runtime.master": _digest(run_trace),
        "runtime.decentral": _digest(dec_run_trace),
    }
    assert len(set(digests.values())) == 1, digests


def test_seeded_chaos_streams_are_byte_identical_sim_vs_runtime():
    """The ISSUE acceptance criterion, as a test.

    One seeded fault plan drives the master--slave simulator and the
    real decentral runtime; the canonical JSONL serializations (the
    wall-clock-free view) must be *byte* identical.
    """
    cluster = _cluster()
    plan = FaultPlan.random(7, workers=3, horizon=1.0)
    clean = simulate("TSS", WL, cluster)
    with capture() as sim_trace:
        simulate("TSS", WL, cluster, chaos=plan.scaled(0.5 * clean.t_p),
                 collector=sim_trace)
    with capture() as run_trace:
        run_decentral("TSS", WL, 3, plan=plan, time_scale=0.1,
                      collector=run_trace)

    sim_rows = canonical_stream(sim_trace.events)
    run_rows = canonical_stream(run_trace.events)
    assert sim_rows == run_rows
    # byte-level, via the JSONL serialization of the canonical rows
    import json

    sim_bytes = "\n".join(
        json.dumps(r, sort_keys=True) for r in sim_rows
    ).encode()
    run_bytes = "\n".join(
        json.dumps(r, sort_keys=True) for r in run_rows
    ).encode()
    assert sim_bytes == run_bytes
    # and the chaos legs really did inject faults somewhere
    assert any(e.kind == "fault" for e in sim_trace.events)


def test_full_jsonl_differs_only_in_clock_bound_fields():
    """Same scheme, two substrates: after stripping the clock-bound
    fields (t/wall/worker/source and per-substrate extras), the
    lifecycle ledger serializes identically."""
    with capture() as a:
        simulate("GSS", WL, _cluster(), collector=a)
    with capture() as b:
        simulate_decentral("GSS", WL, _cluster(), collector=b)
    assert to_jsonl(a.events) != to_jsonl(b.events)  # clocks differ
    assert stream_digest(a.events) == stream_digest(b.events)
