"""Schema tests: the unified event model itself."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import (
    EVENT_KINDS,
    LIFECYCLE_KINDS,
    SOURCES,
    ObsEvent,
    SchemaError,
    validate_event,
)


def test_lifecycle_spine_is_a_subset_of_kinds():
    assert LIFECYCLE_KINDS <= EVENT_KINDS
    assert LIFECYCLE_KINDS == {"request", "assign", "compute", "result"}


def test_every_substrate_has_a_source_tag():
    assert {
        "sim.master", "sim.tree", "sim.decentral",
        "runtime.master", "runtime.worker", "runtime.decentral",
        "chaos", "service",
    } == SOURCES


def test_minimal_event_validates():
    ev = ObsEvent("request", "sim.master", 0.0, worker=2)
    assert validate_event(ev) is ev


def test_interval_kinds_require_nonempty_interval():
    for kind in ("compute", "result", "steal", "repair"):
        with pytest.raises(SchemaError):
            validate_event(ObsEvent(kind, "sim.master", 0.0, worker=0))
        with pytest.raises(SchemaError):
            validate_event(
                ObsEvent(kind, "sim.master", 0.0, worker=0,
                         start=5, stop=5)
            )
        validate_event(
            ObsEvent(kind, "sim.master", 0.0, worker=0, start=5, stop=6)
        )


@pytest.mark.parametrize("bad", [
    ObsEvent("banana", "sim.master", 0.0),
    ObsEvent("request", "sim.banana", 0.0),
    ObsEvent("request", "sim.master", -1.0),
    ObsEvent("fault", "chaos", 0.0),              # fault without detail
    ObsEvent("assign", "sim.master", 0.0, start=9, stop=3),
    ObsEvent("compute", "sim.master", 0.0, start=0, stop=4, value=-2.0),
])
def test_invalid_events_raise(bad):
    with pytest.raises(SchemaError):
        validate_event(bad)


def test_dict_round_trip_is_exact():
    ev = ObsEvent("compute", "runtime.worker", 1.25, worker=3,
                  start=10, stop=20, stage=2, acp=7, value=0.5,
                  detail="x", wall=123.0)
    assert ObsEvent.from_dict(ev.to_dict()) == ev


def test_dict_form_omits_defaults():
    doc = ObsEvent("request", "sim.master", 0.5).to_dict()
    assert doc == {"kind": "request", "source": "sim.master", "t": 0.5}


def test_from_dict_missing_required_field_raises():
    with pytest.raises(SchemaError):
        ObsEvent.from_dict({"kind": "request", "t": 0.0})


def test_events_are_immutable_and_picklable():
    import dataclasses

    ev = ObsEvent("result", "sim.tree", 2.0, worker=1, start=0, stop=4)
    with pytest.raises(dataclasses.FrozenInstanceError):
        ev.t = 3.0  # type: ignore[misc]
    assert pickle.loads(pickle.dumps(ev)) == ev
