"""Exporter tests: JSONL round-trip, Chrome trace, canonical stream."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    ObsEvent,
    canonical_stream,
    read_jsonl,
    stream_digest,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)

EVENTS = [
    ObsEvent("request", "sim.master", 0.0, worker=0),
    ObsEvent("assign", "sim.master", 0.1, worker=0, start=0, stop=8),
    ObsEvent("compute", "sim.master", 0.1, worker=0, start=0, stop=8,
             value=0.4),
    ObsEvent("result", "sim.master", 0.5, worker=0, start=0, stop=8),
    ObsEvent("fault", "chaos", 0.6, worker=1, detail="death"),
    ObsEvent("result", "sim.master", 0.9, worker=2, start=8, stop=12),
    ObsEvent("terminate", "sim.master", 1.0, worker=0),
]


def test_jsonl_round_trip_text_and_file(tmp_path):
    text = to_jsonl(EVENTS)
    assert read_jsonl(text) == EVENTS
    path = tmp_path / "t.jsonl"
    assert write_jsonl(path, EVENTS) == len(EVENTS)
    assert read_jsonl(path) == EVENTS


def test_read_jsonl_tolerates_torn_tail_only(tmp_path):
    path = tmp_path / "torn.jsonl"
    path.write_text(to_jsonl(EVENTS[:2]) + '{"kind": "requ')
    assert read_jsonl(path) == EVENTS[:2]
    # corruption *mid-file* is a real error, not a torn tail
    bad = tmp_path / "corrupt.jsonl"
    bad.write_text('garbage\n' + to_jsonl(EVENTS[:1]))
    with pytest.raises(json.JSONDecodeError):
        read_jsonl(bad)


def test_chrome_trace_layout(tmp_path):
    doc = to_chrome_trace(EVENTS)
    trace = doc["traceEvents"]
    # one process per source, named
    procs = {e["args"]["name"] for e in trace
             if e.get("name") == "process_name"}
    assert procs == {"sim.master", "chaos"}
    # compute spans are complete events with microsecond durations
    spans = [e for e in trace if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["dur"] == pytest.approx(0.4 * 1e6)
    assert spans[0]["ts"] == pytest.approx(0.1 * 1e6)
    # everything else renders as instants
    instants = [e for e in trace if e["ph"] == "i"]
    assert len(instants) == len(EVENTS) - 1
    # the fault instant carries its detail in the name
    assert any(e["name"] == "fault:death" for e in instants)
    # and the whole document is plain JSON
    out = tmp_path / "chrome.json"
    write_chrome_trace(out, EVENTS)
    assert json.loads(out.read_text())["traceEvents"]


def test_chrome_trace_adapt_and_fault_kinds():
    # The meta-scheduler and chaos kinds render as named instants on
    # the emitting worker's thread, with the detail in the name.
    events = [
        ObsEvent("adapt", "sim.master", 0.2, worker=0, start=0,
                 stop=64, stage=1, value=0.9,
                 detail="select TSS"),
        ObsEvent("adapt", "sim.master", 0.8, worker=2, start=64,
                 stop=128, stage=2, value=0.7,
                 detail="retune CSS(64) k=12"),
        ObsEvent("fault", "chaos", 0.4, worker=1, detail="stall",
                 value=0.25),
        ObsEvent("fault", "chaos", 0.5, worker=1, detail="delay",
                 value=0.1),
    ]
    trace = to_chrome_trace(events)["traceEvents"]
    instants = [e for e in trace if e["ph"] == "i"]
    assert len(instants) == len(events)
    names = {e["name"] for e in instants}
    assert names == {
        "adapt:select TSS", "adapt:retune CSS(64) k=12",
        "fault:stall", "fault:delay",
    }
    by_name = {e["name"]: e for e in instants}
    assert by_name["adapt:select TSS"]["ts"] == pytest.approx(0.2e6)
    assert by_name["fault:stall"]["ts"] == pytest.approx(0.4e6)
    # no spans: neither kind carries a duration on the timeline
    assert [e for e in trace if e["ph"] == "X"] == []


def test_canonical_stream_keeps_only_sorted_result_intervals():
    rows = canonical_stream(EVENTS)
    assert rows == [
        {"kind": "result", "start": 0, "stop": 8},
        {"kind": "result", "start": 8, "stop": 12},
    ]


def test_stream_digest_ignores_clocks_workers_and_sources():
    shifted = [
        ObsEvent("result", "runtime.decentral", ev.t + 17.0,
                 worker=ev.worker + 5, start=ev.start, stop=ev.stop,
                 wall=1e9)
        for ev in EVENTS if ev.kind == "result"
    ]
    assert stream_digest(shifted) == stream_digest(EVENTS)
    # but a moved cut point changes it
    moved = shifted[:-1] + [
        ObsEvent("result", "runtime.decentral", 0.0, worker=0,
                 start=8, stop=13),
    ]
    assert stream_digest(moved) != stream_digest(EVENTS)


def test_stream_digest_is_order_insensitive():
    assert stream_digest(list(reversed(EVENTS))) == stream_digest(EVENTS)
