"""Metrics registry and event-derived catalog tests."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsEvent,
    metrics_from_events,
)


def test_counter_only_goes_up():
    c = Counter("n")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("g")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2


def test_histogram_quantiles_and_snapshot():
    h = Histogram("h", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 2.0, 5.0, 50.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["min"] == 0.5 and snap["max"] == 50.0
    assert h.mean == pytest.approx(14.375)
    assert h.quantile(0.0) <= h.quantile(1.0)


def test_quantile_extremes_are_observed_min_and_max():
    # q=0 used to return the first bucket bound regardless of data
    # (seen >= target is trivially true when target == 0).
    h = Histogram("h", buckets=(1.0, 10.0, 100.0))
    for v in (7.0, 42.0, 63.0):
        h.observe(v)
    assert h.quantile(0.0) == 7.0
    assert h.quantile(1.0) == 63.0


def test_quantile_single_observation():
    h = Histogram("h", buckets=(1.0, 10.0, 100.0))
    h.observe(42.0)
    assert h.quantile(0.0) == 42.0
    assert h.quantile(0.5) == 100.0  # bucket upper bound (approx mid)
    assert h.quantile(1.0) == 42.0


def test_quantile_empty_and_out_of_range():
    h = Histogram("h", buckets=(1.0,))
    assert h.quantile(0.0) == 0.0
    assert h.quantile(1.0) == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        h.quantile(-0.1)


def test_registry_get_or_create_and_type_clash():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    assert json.loads(reg.to_json())["x"]["type"] == "counter"


def test_metrics_from_events_catalog():
    events = [
        ObsEvent("request", "sim.master", 0.0, worker=0),
        ObsEvent("assign", "sim.master", 0.25, worker=0, start=0, stop=10),
        ObsEvent("compute", "sim.master", 0.25, worker=0, start=0,
                 stop=10, value=1.0),
        ObsEvent("result", "sim.master", 1.25, worker=0, start=0, stop=10),
        ObsEvent("heartbeat", "runtime.worker", 0.5, worker=1),
        ObsEvent("fetch-add", "runtime.decentral", 0.1, worker=1,
                 value=0.02, detail="global"),
        ObsEvent("fetch-add", "runtime.decentral", 0.2, worker=1,
                 value=0.0, detail="local"),
        ObsEvent("fault", "chaos", 0.3, worker=1, detail="death"),
        ObsEvent("fault", "runtime.master", 0.4, worker=1,
                 detail="deadline"),
        ObsEvent("restart", "chaos", 0.5, worker=1),
        ObsEvent("steal", "sim.tree", 0.6, worker=2, start=10, stop=12),
        ObsEvent("repair", "runtime.decentral", 0.7, worker=-1,
                 start=12, stop=14),
    ]
    snap = metrics_from_events(events).snapshot()
    assert snap["chunks_total"]["value"] == 1
    assert snap["iterations_total"]["value"] == 10
    assert snap["results_total"]["value"] == 1
    assert snap["heartbeats_total"]["value"] == 1
    assert snap["counter_ops_global"]["value"] == 1
    assert snap["counter_ops_local"]["value"] == 1
    assert snap["faults_total"]["value"] == 2
    assert snap["faults_death"]["value"] == 1
    assert snap["heartbeat_misses"]["value"] == 1
    assert snap["restarts_total"]["value"] == 1
    assert snap["steals_total"]["value"] == 1
    assert snap["repairs_total"]["value"] == 1
    assert snap["workers"]["value"] == 3
    assert snap["chunk_size"]["count"] == 1
    assert snap["dispatch_latency"]["count"] == 1
    # the whole snapshot serializes (the per-run JSON artifact)
    assert json.loads(json.dumps(snap)) == snap


def test_metrics_from_events_accepts_existing_registry():
    reg = MetricsRegistry()
    out = metrics_from_events([], registry=reg)
    assert out is reg
    assert reg.counter("chunks_total").value == 0
