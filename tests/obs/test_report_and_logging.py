"""trace_report rendering and the structured-logging layer."""

from __future__ import annotations

import logging

import pytest

from repro.obs import (
    ObsEvent,
    capture,
    configure_logging,
    get_logger,
    stream_digest,
    summarize_workers,
    trace_report,
    write_artifact,
)
from repro.obs.logutil import ENV_LOG_LEVEL, resolve_level
from repro.simulation import ClusterSpec, NodeSpec, simulate
from repro.workloads import UniformWorkload


def _trace():
    wl = UniformWorkload(size=90, unit=1e-5)
    cluster = ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(3)]
    )
    with capture() as trace:
        simulate("GSS", wl, cluster, collector=trace)
    return trace.events


def test_trace_report_contains_table_census_and_digest():
    events = _trace()
    text = trace_report(events, title="my run")
    assert text.startswith("my run -- ")
    assert "worker" in text and "chunks" in text
    assert "events: " in text
    assert f"canonical stream sha256: {stream_digest(events)}" in text


def test_trace_report_empty():
    assert trace_report([], title="t") == "t: (empty trace)"


def test_summarize_workers_counts_lifecycle():
    events = _trace()
    summaries = summarize_workers(events)
    assert set(summaries) == {0, 1, 2}
    assert sum(s.iterations for s in summaries.values()) == 90
    assert all(s.busy > 0 for s in summaries.values())


def test_loggers_live_under_the_repro_root():
    assert get_logger("repro.x").name == "repro.x"
    assert get_logger("other.mod").name == "repro.other.mod"


def test_resolve_level(monkeypatch):
    monkeypatch.delenv(ENV_LOG_LEVEL, raising=False)
    assert resolve_level() == logging.WARNING
    assert resolve_level("debug") == logging.DEBUG
    assert resolve_level(17) == 17
    monkeypatch.setenv(ENV_LOG_LEVEL, "info")
    assert resolve_level() == logging.INFO
    with pytest.raises(ValueError):
        resolve_level("shouty")


def test_configure_logging_is_idempotent(capsys):
    root = configure_logging("info")
    configure_logging("info")
    structured = [
        h for h in root.handlers
        if getattr(h, "_repro_structured", False)
    ]
    assert len(structured) == 1
    get_logger("repro.test").info("hello from the layer")
    captured = capsys.readouterr()
    assert captured.err.count("hello from the layer") == 1
    assert captured.out == ""


def test_log_level_threshold(capsys):
    configure_logging("warning")
    get_logger("repro.test").info("quiet")
    get_logger("repro.test").warning("loud")
    captured = capsys.readouterr()
    assert "quiet" not in captured.err
    assert "loud" in captured.err


def test_write_artifact_goes_to_stdout_verbatim(capsys):
    configure_logging("warning")
    write_artifact("TABLE 1\n  row")
    captured = capsys.readouterr()
    assert captured.out == "TABLE 1\n  row\n"
    assert "TABLE" not in captured.err
