"""Every substrate emits schema-valid events for the full lifecycle."""

from __future__ import annotations

import pytest

from repro.decentral import run_decentral, simulate_decentral
from repro.obs import LIFECYCLE_KINDS, capture, validate_event
from repro.runtime import run_parallel
from repro.simulation import ClusterSpec, NodeSpec, simulate, simulate_tree
from repro.verify import audit_events
from repro.workloads import UniformWorkload

WL = UniformWorkload(size=120, unit=1e-5)


def _cluster(n=3):
    return ClusterSpec(
        nodes=[NodeSpec(name=f"n{i}", speed=100.0) for i in range(n)]
    )


def _check(events, sources, lifecycle=LIFECYCLE_KINDS):
    assert events, "substrate emitted no events"
    for ev in events:
        validate_event(ev)
    seen_sources = {e.source for e in events}
    assert seen_sources <= sources, seen_sources
    kinds = {e.kind for e in events}
    assert lifecycle <= kinds, f"missing lifecycle kinds: {lifecycle - kinds}"


def test_sim_master_emits_lifecycle():
    with capture() as trace:
        simulate("TSS", WL, _cluster(), collector=trace)
    _check(trace.events, {"sim.master"})
    audit_events(trace.events, total=WL.size, scheme="TSS",
                 workers=3).raise_if_failed()


def test_sim_master_disabled_by_default():
    result = simulate("TSS", WL, _cluster())
    assert result.obs_events is None


def test_sim_tree_emits_lifecycle():
    with capture() as trace:
        simulate_tree(WL, _cluster(), collector=trace)
    # TreeS has no request/assign dialogue: compute + result + steal
    _check(trace.events, {"sim.tree"}, lifecycle={"compute", "result"})
    audit_events(trace.events, total=WL.size).raise_if_failed()


def test_sim_decentral_emits_lifecycle():
    with capture() as trace:
        simulate_decentral("TSS", WL, _cluster(), collector=trace)
    _check(trace.events, {"sim.decentral"})
    assert any(e.kind == "fetch-add" for e in trace.events)
    audit_events(trace.events, total=WL.size, scheme="TSS",
                 workers=3).raise_if_failed()


def test_runtime_master_and_workers_emit_lifecycle():
    with capture() as trace:
        run = run_parallel("TSS", WL, 2, collector=trace)
    assert run.results is not None
    _check(trace.events, {"runtime.master", "runtime.worker"})
    by_source = {}
    for ev in trace.events:
        by_source.setdefault(ev.source, set()).add(ev.kind)
    # the master owns the dispatch ledger, workers the compute spans
    assert {"request", "assign", "result",
            "terminate"} <= by_source["runtime.master"]
    assert "compute" in by_source["runtime.worker"]
    # real-runtime events carry absolute wall-clock time
    assert all(e.wall is not None for e in trace.events)
    audit_events(trace.events, total=WL.size, scheme="TSS",
                 workers=2).raise_if_failed()


def test_runtime_decentral_emits_lifecycle():
    with capture() as trace:
        run = run_decentral("TSS", WL, 2, collector=trace)
    assert run.results is not None
    _check(
        trace.events, {"runtime.decentral"},
        lifecycle={"request", "compute", "result"},
    )
    assert any(e.kind == "fetch-add" for e in trace.events)
    audit_events(trace.events, total=WL.size, scheme="TSS",
                 workers=2).raise_if_failed()


@pytest.mark.parametrize("runner", [
    lambda c: simulate("GSS", WL, _cluster(), collector=c),
    lambda c: simulate_tree(WL, _cluster(), collector=c),
    lambda c: simulate_decentral("GSS", WL, _cluster(), collector=c),
])
def test_every_sim_event_validates(runner):
    with capture() as trace:
        runner(trace)
    for ev in trace.events:
        validate_event(ev)
