"""Rolling time-series window tests (repro.obs.timeseries)."""

from __future__ import annotations

import pytest

from repro.obs import ObsEvent, RollingMetrics, RollingWindow


class TestRollingWindow:
    def test_counts_and_totals_inside_window(self):
        w = RollingWindow(width=10.0, bins=10)
        for t in (1.0, 2.0, 3.0):
            w.observe(t, 2.0)
        assert w.count() == 3
        assert w.total() == 6.0
        assert w.mean() == 2.0
        assert w.rate() == pytest.approx(0.3)
        assert w.value_rate() == pytest.approx(0.6)

    def test_old_observations_age_out(self):
        w = RollingWindow(width=10.0, bins=10)
        w.observe(1.0)
        w.observe(25.0)
        # At now=25 the window is [15, 25]: the t=1 bin is gone.
        assert w.count() == 1
        assert w.latest == 25.0

    def test_bin_reuse_resets_stale_contents(self):
        w = RollingWindow(width=4.0, bins=4)
        w.observe(0.5, 100.0)   # slot 0 (epoch 0)
        w.observe(4.5, 1.0)     # slot 0 again (epoch 4): must reset
        assert w.total() == 1.0

    def test_stale_observations_dropped_and_counted(self):
        w = RollingWindow(width=5.0, bins=5)
        w.observe(100.0)
        w.observe(2.0)  # older than latest - width: dropped
        assert w.count() == 1
        assert w.stale == 1

    def test_query_at_explicit_now(self):
        w = RollingWindow(width=10.0, bins=10)
        w.observe(3.0)
        assert w.count(now=3.0) == 1
        # the window has moved on: nothing inside [90, 100]
        assert w.count(now=100.0) == 0

    def test_empty_window(self):
        w = RollingWindow(width=10.0, bins=10)
        assert w.count() == 0
        assert w.total() == 0.0
        assert w.mean() == 0.0
        assert w.latest is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RollingWindow(width=0.0)
        with pytest.raises(ValueError):
            RollingWindow(width=-1.0)
        with pytest.raises(ValueError):
            RollingWindow(width=1.0, bins=0)


class TestRollingMetrics:
    @staticmethod
    def _chunk(t, worker, start, stop, dur):
        return [
            ObsEvent("compute", "sim.master", t, worker=worker,
                     start=start, stop=stop, value=dur),
            ObsEvent("result", "sim.master", t + dur, worker=worker,
                     start=start, stop=stop),
        ]

    def test_rates_and_utilization(self):
        rm = RollingMetrics(width=10.0, bins=10)
        rm.observe_all(
            self._chunk(0.0, 0, 0, 10, 2.0)
            + self._chunk(0.0, 1, 10, 20, 2.0)
        )
        snap = rm.snapshot()
        assert snap["chunk_rate"] == pytest.approx(0.2)
        assert snap["result_rate"] == pytest.approx(0.2)
        assert snap["iteration_rate"] == pytest.approx(2.0)
        # both workers busy 2s of a 10s window
        assert snap["utilization"] == pytest.approx(0.2)
        assert snap["imbalance"] == 0.0
        assert snap["busy_sigma"] == 0.0
        assert snap["workers_seen"] == 2

    def test_imbalance_and_sigma(self):
        rm = RollingMetrics(width=10.0, bins=10)
        rm.observe_all(
            self._chunk(0.0, 0, 0, 10, 6.0)
            + self._chunk(0.0, 1, 10, 20, 2.0)
        )
        snap = rm.snapshot()
        # busy: {6, 2} -> mean 4, (max-min)/mean = 1, sigma = 2
        assert snap["imbalance"] == pytest.approx(1.0)
        assert snap["busy_sigma"] == pytest.approx(2.0)
        assert snap["utilization"] == pytest.approx(0.4)

    def test_fault_and_job_windows(self):
        rm = RollingMetrics(width=10.0, bins=10)
        rm.observe(ObsEvent("fault", "chaos", 1.0, worker=0,
                            detail="death"))
        rm.observe(ObsEvent("job-result", "service", 2.0, worker=0,
                            value=0.5))
        snap = rm.snapshot()
        assert snap["fault_rate"] == pytest.approx(0.1)
        assert snap["job_rate"] == pytest.approx(0.1)

    def test_explicit_at_overrides_event_time(self):
        # The daemon keys on receive time so per-job sim clocks
        # (which all start at 0) do not collide.
        rm = RollingMetrics(width=10.0, bins=10)
        ev = ObsEvent("compute", "sim.master", 0.001, worker=0,
                      start=0, stop=5, value=0.001)
        rm.observe(ev, at=50.0)
        assert rm.latest() == 50.0
        assert rm.snapshot(now=50.0)["chunk_rate"] == pytest.approx(0.1)

    def test_snapshot_is_json_compatible(self):
        import json

        rm = RollingMetrics(width=5.0, bins=5)
        rm.observe_all(self._chunk(1.0, 0, 0, 4, 0.5))
        doc = json.loads(json.dumps(rm.snapshot()))
        assert doc["window_seconds"] == 5.0
        assert doc["workers_seen"] == 1

    def test_empty_snapshot(self):
        snap = RollingMetrics(width=5.0).snapshot()
        assert snap["chunk_rate"] == 0.0
        assert snap["utilization"] == 0.0
        assert snap["workers_seen"] == 0
