"""RuntimeConfig: validation, env overrides, deadline enforcement."""

from __future__ import annotations

import pytest

from repro.core import make
from repro.runtime import RuntimeConfig, WorkerTimeoutError
from repro.runtime.master import master_loop
from repro.workloads import UniformWorkload


class TestDefaultsAndValidation:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.poll_timeout == 5.0
        assert config.worker_deadline == 120.0
        assert config.heartbeat_interval == 2.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            RuntimeConfig(poll_timeout=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(join_timeout=-1.0)
        with pytest.raises(ValueError):
            RuntimeConfig(restart_backoff=0.0)

    def test_deadline_must_exceed_heartbeat(self):
        with pytest.raises(ValueError, match="deadline"):
            RuntimeConfig(worker_deadline=1.0, heartbeat_interval=2.0)
        # disabling either side lifts the constraint
        RuntimeConfig(worker_deadline=None, heartbeat_interval=2.0)
        RuntimeConfig(worker_deadline=1.0, heartbeat_interval=None)


class TestFromEnv:
    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLL_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_WORKER_DEADLINE", "30")
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.5")
        monkeypatch.setenv("REPRO_JOIN_TIMEOUT", "7")
        monkeypatch.setenv("REPRO_RESTART_BACKOFF", "0.01")
        config = RuntimeConfig.from_env()
        assert config.poll_timeout == 1.5
        assert config.worker_deadline == 30.0
        assert config.heartbeat_interval == 0.5
        assert config.join_timeout == 7.0
        assert config.restart_backoff == 0.01

    def test_non_positive_disables_deadline_and_heartbeat(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WORKER_DEADLINE", "0")
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "-1")
        config = RuntimeConfig.from_env()
        assert config.worker_deadline is None
        assert config.heartbeat_interval is None

    def test_kwargs_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLL_TIMEOUT", "1.5")
        config = RuntimeConfig.from_env(poll_timeout=0.25)
        assert config.poll_timeout == 0.25

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLL_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_POLL_TIMEOUT"):
            RuntimeConfig.from_env()

    @pytest.mark.parametrize("raw", ["-1", "0", "-0.5"])
    def test_non_positive_poll_timeout_names_the_variable(
        self, monkeypatch, raw
    ):
        # poll_timeout has no "disabled" reading, so a bad value must
        # fail with the env var's name, not a bare constructor message.
        monkeypatch.setenv("REPRO_POLL_TIMEOUT", raw)
        with pytest.raises(ValueError, match="REPRO_POLL_TIMEOUT"):
            RuntimeConfig.from_env()

    @pytest.mark.parametrize("raw", ["nan", "inf", "-inf", "NaN"])
    def test_non_finite_env_rejected(self, monkeypatch, raw):
        # float() accepts these, but inf would silently disable
        # polling and nan would surface as a cryptic comparison error.
        monkeypatch.setenv("REPRO_POLL_TIMEOUT", raw)
        with pytest.raises(ValueError, match="finite"):
            RuntimeConfig.from_env()

    @pytest.mark.parametrize(
        "raw", ["", "   ", None],
    )
    def test_blank_env_means_unset(self, monkeypatch, raw):
        if raw is None:
            monkeypatch.delenv("REPRO_POLL_TIMEOUT", raising=False)
        else:
            monkeypatch.setenv("REPRO_POLL_TIMEOUT", raw)
        assert RuntimeConfig.from_env().poll_timeout == 5.0

    def test_garbage_deadline_names_its_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_DEADLINE", "2h")
        with pytest.raises(ValueError, match="REPRO_WORKER_DEADLINE"):
            RuntimeConfig.from_env()

    def test_underscored_and_exponent_forms_parse(self, monkeypatch):
        # float() niceties that operators actually use.
        monkeypatch.setenv("REPRO_POLL_TIMEOUT", "2.5e-1")
        monkeypatch.setenv("REPRO_JOIN_TIMEOUT", "1_0")
        config = RuntimeConfig.from_env()
        assert config.poll_timeout == 0.25
        assert config.join_timeout == 10.0


class _SilentConn(object):
    """A fake pipe whose worker never says anything (hung process)."""

    def __init__(self):
        self.closed = False

    def recv(self):  # pragma: no cover - never ready
        raise AssertionError("silent conn should never be read")

    def send(self, msg):
        pass

    def close(self):
        self.closed = True


class TestDeadlineEnforcement:
    def test_silent_worker_raises_worker_timeout(self):
        import repro.runtime.master as master_mod

        wl = UniformWorkload(30)
        scheduler = make("CSS(5)", wl.size, 1)
        conn = _SilentConn()
        original_wait = master_mod.wait
        master_mod.wait = lambda conns, timeout=None: []
        try:
            with pytest.raises(WorkerTimeoutError) as err:
                master_loop(
                    scheduler, {0: conn},
                    config=RuntimeConfig(
                        poll_timeout=0.01,
                        worker_deadline=0.05,
                        heartbeat_interval=0.02,
                    ),
                )
        finally:
            master_mod.wait = original_wait
        # the error must point the operator at the knob
        assert "REPRO_WORKER_DEADLINE" in str(err.value)
        assert conn.closed

    def test_heartbeat_survives_long_chunk(self):
        """A single long chunk outlives the deadline; heartbeats from
        the worker's side thread must keep it alive."""
        import numpy as np

        from repro.runtime import run_parallel
        from repro.workloads import SpinWorkload

        wl = SpinWorkload(24, spins=40, veclen=4096)
        run = run_parallel(
            "CSS", wl, 2,
            config=RuntimeConfig(
                poll_timeout=0.05,
                worker_deadline=0.4,
                heartbeat_interval=0.05,
            ),
            k=12,  # one chunk per worker: longest possible silence
        )
        np.testing.assert_array_equal(run.results, wl.execute_serial())

    def test_disabled_deadline_never_times_out(self):
        import numpy as np

        from repro.runtime import run_parallel

        wl = UniformWorkload(40)
        run = run_parallel(
            "TSS", wl, 2,
            config=RuntimeConfig(
                poll_timeout=0.05,
                worker_deadline=None,
                heartbeat_interval=None,
            ),
        )
        np.testing.assert_array_equal(run.results, wl.execute_serial())
