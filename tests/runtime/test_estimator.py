"""Tests for the virtual-power estimator."""

from __future__ import annotations

import pytest

from repro.runtime import (
    WorkerSpec,
    estimate_virtual_powers,
    probe_seconds_per_iteration,
)


class TestProbe:
    def test_returns_per_worker_times(self):
        times = probe_seconds_per_iteration(2, probe_iterations=4,
                                            probe_spins=10)
        assert set(times) <= {0, 1}
        assert all(t > 0 for t in times.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            probe_seconds_per_iteration(0)
        with pytest.raises(ValueError):
            probe_seconds_per_iteration(2, probe_iterations=0)


class TestEstimate:
    def test_slowest_is_one(self):
        powers = estimate_virtual_powers(2, probe_iterations=4,
                                         probe_spins=10, repeats=2)
        assert len(powers) == 2
        assert min(powers) == pytest.approx(1.0)

    def test_recovers_emulated_slowdown(self):
        # Worker 0 is slowed 4x; its estimated power should be clearly
        # below its peer's (exact recovery depends on scheduler noise,
        # so assert the ordering and a coarse magnitude).
        specs = [WorkerSpec(slowdown=4.0), WorkerSpec()]
        powers = estimate_virtual_powers(
            2, specs=specs, probe_iterations=6, probe_spins=40,
            repeats=3,
        )
        assert powers[1] > 1.5 * powers[0]

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            estimate_virtual_powers(2, repeats=0)
