"""Integration tests for the multiprocessing master--worker runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import WorkerSpec, run_parallel, run_serial
from repro.workloads import (
    MandelbrotWorkload,
    MatrixAddWorkload,
    ReorderedWorkload,
    UniformWorkload,
)

SCHEMES = ["SS", "CSS(8)", "GSS", "TSS", "FSS", "FISS", "TFSS",
           "DTSS", "DFSS", "DFISS", "DTFSS"]


@pytest.fixture(scope="module")
def tiny_mandelbrot():
    return MandelbrotWorkload(60, 40, max_iter=24)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_results_equal_serial(scheme, tiny_mandelbrot):
    run = run_parallel(scheme, tiny_mandelbrot, 3)
    serial, _ = run_serial(tiny_mandelbrot)
    np.testing.assert_array_equal(run.results, serial)
    assert run.requeued == 0


class TestProtocol:
    def test_chunks_cover_loop(self, tiny_mandelbrot):
        run = run_parallel("TSS", tiny_mandelbrot, 3)
        spans = sorted((s, e) for _w, s, e in run.chunks)
        cursor = 0
        for start, stop in spans:
            assert start == cursor
            cursor = stop
        assert cursor == tiny_mandelbrot.size

    def test_stats_collected(self, tiny_mandelbrot):
        run = run_parallel("FSS", tiny_mandelbrot, 2)
        assert set(run.stats) == {0, 1}
        total = sum(s.iterations for s in run.stats.values())
        assert total == tiny_mandelbrot.size

    def test_reordered_workload(self):
        wl = ReorderedWorkload(
            MandelbrotWorkload(48, 32, max_iter=16), sf=4
        )
        run = run_parallel("DTSS", wl, 3)
        serial = wl.execute_serial()
        np.testing.assert_array_equal(
            np.asarray(run.results).reshape(serial.shape), serial
        )

    def test_matrix_workload_correct(self):
        wl = MatrixAddWorkload(n=64, size=16, seed=4)
        run = run_parallel("GSS", wl, 3)
        np.testing.assert_allclose(
            np.asarray(run.results).reshape(wl.expected().shape),
            wl.expected(),
        )

    def test_empty_loop(self):
        run = run_parallel("TSS", UniformWorkload(0), 2)
        assert run.results.size == 0
        assert run.total_chunks == 0

    def test_more_workers_than_iterations(self):
        wl = UniformWorkload(2)
        run = run_parallel("SS", wl, 4)
        assert sum(e - s for _w, s, e in run.chunks) == 2

    def test_invalid_worker_count(self, tiny_mandelbrot):
        with pytest.raises(ValueError):
            run_parallel("TSS", tiny_mandelbrot, 0)


class TestHeterogeneityEmulation:
    def test_slowdown_multiplies_compute_time(self):
        # A slowed worker re-executes each chunk, so its *per-iteration*
        # wall time is a multiple of an unslowed peer's.  (Tiny chunks
        # are round-trip-bound, so we assert on measured compute time,
        # not on how many iterations the scheduler happened to assign.)
        wl = MandelbrotWorkload(64, 256, max_iter=64)
        specs = [WorkerSpec(slowdown=8.0), WorkerSpec()]
        run = run_parallel("CSS(8)", wl, 2, specs=specs)
        per_iter = {
            wid: s.compute_seconds / max(1, s.iterations)
            for wid, s in run.stats.items()
            if s.iterations
        }
        if 0 in per_iter and 1 in per_iter:
            assert per_iter[0] > 2.0 * per_iter[1]

    def test_distributed_scheme_uses_acp(self, tiny_mandelbrot):
        specs = [
            WorkerSpec(virtual_power=3.0),
            WorkerSpec(virtual_power=1.0, run_queue=2),
        ]
        run = run_parallel("DTSS", tiny_mandelbrot, 2, specs=specs)
        first_chunks = {}
        for wid, start, stop in run.chunks:
            first_chunks.setdefault(wid, stop - start)
        # ACPs are 30 vs 5: the strong worker's first chunk is larger.
        # (The weak worker may miss out entirely if the strong one
        # drains the loop before its first request lands -- that is
        # also correct ACP behaviour.)
        if 1 in first_chunks:
            assert first_chunks[0] > first_chunks[1]
        assert 0 in first_chunks

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            WorkerSpec(slowdown=0.5)
        with pytest.raises(ValueError):
            WorkerSpec(virtual_power=0.0)
        with pytest.raises(ValueError):
            WorkerSpec(run_queue=0)


class TestSerial:
    def test_run_serial_times(self, tiny_mandelbrot):
        out, elapsed = run_serial(tiny_mandelbrot)
        assert out.shape == (tiny_mandelbrot.size * 40,)
        assert elapsed >= 0.0
