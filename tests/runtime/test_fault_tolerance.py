"""Failure-injection tests: the master must survive worker loss.

These tests drive :func:`repro.runtime.master.master_loop` directly
with fake in-process "connections", so worker death is deterministic
(no real process juggling, no timing flake).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make
from repro.runtime.master import master_loop
from repro.runtime.messages import Assign, Request, Terminate, WorkerStats
from repro.workloads import UniformWorkload


class ScriptedWorker(object):
    """A fake pipe end that computes chunks in-process.

    ``die_after`` kills the "worker" after that many completed chunks:
    the next master read raises EOFError, as a real closed pipe would.
    """

    def __init__(self, wid: int, workload, die_after: int | None = None):
        self.wid = wid
        self.workload = workload
        self.die_after = die_after
        self.completed = 0
        self.dead = False
        self.terminated = False
        self._outbox = [Request(worker_id=wid, stats=WorkerStats())]
        self._pending = None

    # master-side interface ------------------------------------------------
    def recv(self):
        if self.dead:
            raise EOFError
        if not self._outbox:
            raise AssertionError("master read with nothing to say")
        return self._outbox.pop(0)

    def send(self, msg):
        if self.dead:
            raise BrokenPipeError
        if isinstance(msg, Terminate):
            self.terminated = True
            return
        assert isinstance(msg, Assign)
        if self.die_after is not None \
                and self.completed >= self.die_after:
            self.dead = True
            return
        payload = self.workload.execute(msg.start, msg.stop)
        self.completed += 1
        self._outbox.append(
            Request(
                worker_id=self.wid,
                result=(msg.start, payload),
                stats=WorkerStats(chunks=self.completed),
            )
        )

    def fileno(self) -> int:  # pragma: no cover - not used by fake wait
        return -1


def run_master(workload, workers, scheme="CSS(10)", **scheme_kwargs):
    scheduler = make(scheme, workload.size, len(workers),
                     **scheme_kwargs)
    conns = {w.wid: w for w in workers}

    # Monkeypatch-free fake of multiprocessing.connection.wait: ready =
    # live workers with queued messages.
    import repro.runtime.master as master_mod

    original_wait = master_mod.wait

    def fake_wait(conn_list, timeout=None):
        ready = [c for c in conn_list if not c.dead and c._outbox]
        dead = [c for c in conn_list if c.dead]
        return ready + dead

    master_mod.wait = fake_wait
    try:
        return master_loop(scheduler, conns)
    finally:
        master_mod.wait = original_wait


class TestWorkerDeath:
    def test_lost_chunk_is_reassigned(self):
        wl = UniformWorkload(100)
        workers = [
            ScriptedWorker(0, wl, die_after=2),
            ScriptedWorker(1, wl),
        ]
        result = run_master(wl, workers)
        assert result.requeued >= 1
        # Every iteration was computed exactly once.
        spans = sorted((s, e) for _w, s, e in result.chunks)
        cursor = 0
        for start, stop in spans:
            assert start == cursor
            cursor = stop
        assert cursor == 100
        # And the collected results cover the loop.
        got = np.concatenate(
            [r for _s, r in sorted(result.results, key=lambda x: x[0])]
        )
        np.testing.assert_array_equal(got, wl.costs())

    def test_immediate_death(self):
        wl = UniformWorkload(50)
        workers = [
            ScriptedWorker(0, wl, die_after=0),
            ScriptedWorker(1, wl),
        ]
        result = run_master(wl, workers)
        assert result.assigned_iterations() == 50

    def test_all_but_one_die(self):
        wl = UniformWorkload(80)
        workers = [
            ScriptedWorker(0, wl, die_after=1),
            ScriptedWorker(1, wl, die_after=1),
            ScriptedWorker(2, wl),
        ]
        result = run_master(wl, workers)
        assert result.assigned_iterations() == 80
        assert workers[2].terminated

    def test_no_deaths_no_requeue(self):
        wl = UniformWorkload(60)
        workers = [ScriptedWorker(0, wl), ScriptedWorker(1, wl)]
        result = run_master(wl, workers)
        assert result.requeued == 0
        assert all(w.terminated for w in workers)

    def test_death_with_distributed_scheme(self):
        wl = UniformWorkload(200)
        workers = [
            ScriptedWorker(0, wl, die_after=1),
            ScriptedWorker(1, wl),
            ScriptedWorker(2, wl),
        ]
        result = run_master(wl, workers, scheme="DFSS")
        assert result.assigned_iterations() == 200


class TestRealProcessDeath:
    def test_sigkilled_worker_does_not_hang_run(self):
        """End-to-end: a real worker process is killed mid-run."""
        import multiprocessing as mp
        import os
        import signal

        from repro.core import make as make_scheme
        from repro.runtime.master import master_loop as real_master
        from repro.runtime.worker import worker_main

        wl = UniformWorkload(40)
        ctx = mp.get_context("fork")
        pipes, procs = {}, []
        for wid in range(3):
            parent, child = ctx.Pipe()
            pipes[wid] = parent
            proc = ctx.Process(
                target=worker_main, args=(child, wl, wid), daemon=True
            )
            proc.start()
            procs.append(proc)
        # Kill worker 0 outright; the master must reassign its chunk.
        os.kill(procs[0].pid, signal.SIGKILL)
        procs[0].join()
        scheduler = make_scheme("CSS(5)", wl.size, 3)
        result = real_master(scheduler, pipes)
        assert result.assigned_iterations() == 40
        for proc in procs[1:]:
            proc.join(timeout=10)

    def test_sigkill_mid_loop_result_equals_fault_free_run(self):
        """Kill a worker while it is actually computing.

        The run must finish on the survivors with results bit-identical
        to the fault-free execution -- the acceptance criterion for the
        runtime's fail-stop hardening.
        """
        import numpy as np

        from repro.chaos import FaultPlan, WorkerDeath, run_chaos
        from repro.verify import audit_run
        from repro.workloads import SpinWorkload

        # Compute-bound and deterministic: the SIGKILL lands mid-loop.
        wl = SpinWorkload(60, spins=50, veclen=4096)
        serial = wl.execute_serial()
        plan = FaultPlan(events=(WorkerDeath(worker=1, at=0.02),))
        run = run_chaos("CSS", wl, 3, plan, k=6)
        audit_run(run, workload=wl, scheme="CSS", workers=3,
                  k=6).raise_if_failed()
        np.testing.assert_array_equal(run.results, serial)

    def test_sigkill_then_restart_rejoins_and_result_is_exact(self):
        """Kill one incarnation mid-run, admit a fresh one, finish.

        Exercises the restart re-admission path: the replacement pipe
        must not mask the dead incarnation's EOF (its outstanding chunk
        is requeued exactly once).
        """
        import numpy as np

        from repro.chaos import (
            FaultPlan,
            WorkerDeath,
            WorkerRestart,
            run_chaos,
        )
        from repro.verify import audit_run
        from repro.workloads import SpinWorkload

        wl = SpinWorkload(60, spins=50, veclen=4096)
        serial = wl.execute_serial()
        plan = FaultPlan(events=(
            WorkerDeath(worker=1, at=0.02),
            WorkerRestart(worker=1, at=0.08),
        ))
        run = run_chaos("CSS", wl, 3, plan, k=6)
        audit_run(run, workload=wl, scheme="CSS",
                  workers=3, k=6).raise_if_failed()
        assert run.requeued >= 1
        np.testing.assert_array_equal(run.results, serial)
