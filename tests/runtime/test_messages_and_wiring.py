"""Unit tests for wire messages and engine wiring helpers."""

from __future__ import annotations

import pytest

from repro.core.factoring import WeightedFactoringScheduler
from repro.runtime.messages import Assign, Request, Terminate, WorkerStats
from repro.simulation import make_for_cluster

from tests.conftest import make_cluster


class TestMessages:
    def test_assign_validates_interval(self):
        Assign(0, 5)  # fine
        with pytest.raises(ValueError):
            Assign(5, 5)
        with pytest.raises(ValueError):
            Assign(5, 3)

    def test_request_defaults(self):
        req = Request(worker_id=2)
        assert req.acp is None
        assert req.result is None

    def test_worker_stats_accumulators(self):
        stats = WorkerStats()
        stats.compute_seconds += 1.5
        stats.wait_seconds += 0.5
        stats.iterations += 10
        assert stats.compute_seconds == 1.5
        assert stats.wait_seconds == 0.5

    def test_terminate_is_plain(self):
        assert isinstance(Terminate(), Terminate)


class TestMakeForCluster:
    def test_wf_gets_cluster_weights(self):
        cluster = make_cluster(n_fast=1, n_slow=1)
        sched = make_for_cluster("WF", 100, cluster)
        assert isinstance(sched, WeightedFactoringScheduler)
        assert sched.weights == cluster.virtual_powers()

    def test_distributed_gets_acp_model(self):
        from repro.core.acp import AcpModel

        cluster = make_cluster()
        model = AcpModel(scale=100)
        sched = make_for_cluster("DTSS", 100, cluster, acp_model=model)
        assert sched.acp_model is model

    def test_simple_scheme_passthrough(self):
        cluster = make_cluster()
        sched = make_for_cluster("CSS(9)", 100, cluster)
        assert sched.k == 9

    def test_explicit_weights_not_overridden(self):
        cluster = make_cluster(n_fast=1, n_slow=1)
        sched = make_for_cluster("WF", 100, cluster,
                                 weights=[1.0, 1.0])
        assert sched.weights == [1.0, 1.0]
