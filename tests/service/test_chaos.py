"""FaultPlan against a live daemon: seeded kills, digest isolation."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.chaos import (
    FaultPlan,
    MessageDelay,
    WorkerDeath,
    WorkerRestart,
    applicable_faults,
    inject_service_faults,
)
from repro.obs import stream_digest
from repro.runtime.config import RuntimeConfig
from repro.service import ServiceClient
from repro.service.jobs import job_from_spec
from repro.service.server import ServiceConfig, ServiceServer
from repro.verify import audit_service_log

SNAPPY = RuntimeConfig(
    poll_timeout=0.05,
    worker_deadline=20.0,
    heartbeat_interval=0.2,
    join_timeout=5.0,
)

# Wall-clock slow in the worker (SS = one DES event pair per
# iteration, ~2s) -- the window the seeded kill lands in.
SLOW_SPEC = {
    "scheme": "SS",
    "workload": {"kind": "uniform", "size": 60000, "unit": 1e-4},
    "cluster": {"workers": 2},
}
FAST_SPEC = {
    "scheme": "TSS",
    "workload": {"kind": "uniform", "size": 300, "unit": 1e-4},
    "cluster": {"workers": 4},
}


class TestApplicableFaults:
    def test_filters_to_in_range_deaths(self):
        plan = FaultPlan(events=(
            WorkerDeath(worker=0, at=1.0),
            WorkerDeath(worker=5, at=1.0),      # out of range
            WorkerRestart(worker=0, at=2.0),    # implicit in a pool
            MessageDelay(worker=0, at=0.5, delay=0.1),  # no analogue
        ))
        hits = applicable_faults(plan, slots=2)
        assert len(hits) == 1
        assert hits[0].worker == 0 and hits[0].kind == "death"

    def test_empty_plan(self):
        assert applicable_faults(FaultPlan(), slots=4) == []

    def test_time_scale_must_be_positive(self):
        class _Stub(object):
            class pool(object):
                size = 2

        with pytest.raises(ValueError, match="time_scale"):
            asyncio.run(_inject(_Stub(), FaultPlan(), -1.0))


async def _inject(server, plan, time_scale):
    return inject_service_faults(server, plan, time_scale=time_scale)


class _Daemon(object):
    """A live daemon on a background thread (no signal handlers)."""

    def __init__(self, tmp_path, **config_kwargs):
        self.sock = str(tmp_path / "repro.sock")
        kwargs = dict(
            workers=2, socket_path=self.sock, runtime=SNAPPY,
        )
        kwargs.update(config_kwargs)
        self.server = ServiceServer(ServiceConfig(**kwargs))
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                self.server.serve(install_signals=False)
            ),
            daemon=True,
        )

    def __enter__(self):
        self._thread.start()
        probe = ServiceClient.connect(
            self.sock, tenant="probe", retry_for=10.0
        )
        probe.close()
        return self

    def __exit__(self, *exc):
        if self._thread.is_alive():
            try:
                with self.client("teardown") as c:
                    c.drain()
            except Exception:
                pass
            self._thread.join(timeout=30.0)

    def client(self, tenant: str) -> ServiceClient:
        return ServiceClient.connect(
            self.sock, tenant=tenant, retry_for=5.0
        )


@pytest.mark.slow
class TestLiveChaos:
    def test_seeded_plan_kills_recover_exactly_once(self, tmp_path):
        """The acceptance scenario: a seeded FaultPlan SIGKILLs the
        worker running one tenant's job mid-loop; that job recovers
        exactly once and every tenant's digest stays bit-identical to
        its one-shot reference."""
        ref_slow = stream_digest(
            job_from_spec(SLOW_SPEC).run().obs_events
        )
        ref_fast = stream_digest(
            job_from_spec(FAST_SPEC).run().obs_events
        )
        # Both slots die shortly after the victim job starts; the
        # plan is seeded data, not an inline kill call.
        plan = FaultPlan(events=(
            WorkerDeath(worker=0, at=0.6),
            WorkerDeath(worker=1, at=0.6),
            MessageDelay(worker=0, at=0.1, delay=0.5),  # skipped
        ))
        with _Daemon(tmp_path) as d:
            with d.client("alice") as alice, d.client("bob") as bob:
                jid_a = alice.submit(SLOW_SPEC)
                # Scheduled count excludes the delay (no analogue).
                assert alice.inject_chaos(plan.to_json()) == 2
                jid_b = bob.submit(FAST_SPEC)
                out_b = bob.wait(jid_b, timeout=120)
                out_a = alice.wait(jid_a, timeout=240)
                ledger = alice.log()
                metrics = alice.metrics()
        assert out_a["state"] == "done"
        assert out_a["requeues"] >= 1, \
            "seeded kill never interrupted the victim job"
        assert out_a["digest"] == ref_slow
        assert out_b["state"] == "done"
        assert out_b["digest"] == ref_fast, \
            "bystander tenant's digest perturbed by seeded faults"
        audit_service_log(ledger).raise_if_failed()
        assert metrics["worker_deaths_total"]["value"] >= 1

    def test_bad_plan_rejected_with_reason(self, tmp_path):
        from repro.service import ServiceError

        with _Daemon(tmp_path) as d, d.client("alice") as c:
            with pytest.raises(ServiceError) as err:
                c.inject_chaos({"events": [{"kind": "??"}]})
            assert err.value.reason == "bad-plan"

    def test_kill_on_idle_slot_is_harmless(self, tmp_path):
        """Deaths landing on empty slots respawn the worker without
        touching any job -- the pool absorbs them silently."""
        plan = FaultPlan(events=(WorkerDeath(worker=0, at=0.0),))
        with _Daemon(tmp_path) as d, d.client("alice") as c:
            assert c.inject_chaos(plan.to_json()) == 1
            time.sleep(0.5)  # let the kill fire and the pool revive
            out = c.run(FAST_SPEC, timeout=120)
            assert out["state"] == "done"
            assert out["requeues"] == 0
            audit_service_log(c.log()).raise_if_failed()
