"""ClientConfig env parsing and the capped-backoff connect retry."""

from __future__ import annotations

import pytest

import repro.service.client as client_mod
from repro.service.client import ClientConfig, ServiceClient


class TestClientConfig:
    def test_defaults(self):
        config = ClientConfig()
        assert config.retry_initial == pytest.approx(0.02)
        assert config.retry_max == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="retry_initial"):
            ClientConfig(retry_initial=0.0)
        with pytest.raises(ValueError, match="retry_max"):
            ClientConfig(retry_initial=0.5, retry_max=0.1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_RETRY_INITIAL", "0.01")
        monkeypatch.setenv("REPRO_CLIENT_RETRY_MAX", "2.0")
        config = ClientConfig.from_env()
        assert config.retry_initial == pytest.approx(0.01)
        assert config.retry_max == pytest.approx(2.0)

    def test_from_env_kwargs_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_RETRY_MAX", "2.0")
        config = ClientConfig.from_env(retry_max=0.25)
        assert config.retry_max == pytest.approx(0.25)

    @pytest.mark.parametrize("value", ["0", "-1", "nan", "lots"])
    def test_bad_env_names_the_variable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CLIENT_RETRY_INITIAL", value)
        with pytest.raises(ValueError,
                           match="REPRO_CLIENT_RETRY_INITIAL"):
            ClientConfig.from_env()

    def test_unset_env_means_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLIENT_RETRY_INITIAL",
                           raising=False)
        monkeypatch.delenv("REPRO_CLIENT_RETRY_MAX", raising=False)
        assert ClientConfig.from_env() == ClientConfig()


class _FakeClock:
    """Deterministic stand-in for the ``time`` module: ``sleep``
    advances ``monotonic`` and records every wait."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list = []

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class TestConnectBackoff:
    def _attempt(self, tmp_path, monkeypatch, retry_for: float,
                 config: ClientConfig):
        clock = _FakeClock()
        monkeypatch.setattr(client_mod, "time", clock)
        missing = str(tmp_path / "no-daemon.sock")
        with pytest.raises(FileNotFoundError):
            ServiceClient.connect(
                missing, retry_for=retry_for, config=config
            )
        return clock

    def test_waits_double_up_to_the_cap(self, tmp_path, monkeypatch):
        clock = self._attempt(
            tmp_path, monkeypatch, retry_for=2.0,
            config=ClientConfig(retry_initial=0.05, retry_max=0.4),
        )
        assert clock.sleeps[:4] == pytest.approx(
            [0.05, 0.1, 0.2, 0.4]
        )
        # Capped thereafter, never growing past retry_max.
        assert all(s <= 0.4 + 1e-9 for s in clock.sleeps)

    def test_never_sleeps_past_the_deadline(self, tmp_path,
                                            monkeypatch):
        clock = self._attempt(
            tmp_path, monkeypatch, retry_for=0.12,
            config=ClientConfig(retry_initial=0.05, retry_max=0.4),
        )
        # 0.05 + 0.07 == deadline: the final wait is clipped to the
        # remaining budget instead of the backoff ladder's 0.1.
        assert sum(clock.sleeps) == pytest.approx(0.12)
        assert clock.sleeps[-1] < 0.1

    def test_no_retry_budget_raises_immediately(self, tmp_path,
                                                monkeypatch):
        clock = self._attempt(
            tmp_path, monkeypatch, retry_for=0.0,
            config=ClientConfig(),
        )
        assert clock.sleeps == []
