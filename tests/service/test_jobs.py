"""Wire job model: spec -> SimJob identity, validation, rejection."""

from __future__ import annotations

import pytest

from repro.batch import SimJob
from repro.obs import stream_digest
from repro.service.jobs import (
    JobSpecError,
    cluster_from_spec,
    job_from_spec,
    workload_from_spec,
)
from repro.workloads import (
    LinearWorkload,
    MandelbrotWorkload,
    UniformWorkload,
)


class TestWorkloadFromSpec:
    def test_uniform(self):
        wl = workload_from_spec(
            {"kind": "uniform", "size": 50, "unit": 2.0}
        )
        assert isinstance(wl, UniformWorkload)
        assert wl.size == 50
        assert list(wl.costs()) == [2.0] * 50

    def test_linear_decreasing(self):
        wl = workload_from_spec(
            {"kind": "linear", "size": 10, "increasing": False}
        )
        assert isinstance(wl, LinearWorkload)
        costs = list(wl.costs())
        assert costs == sorted(costs, reverse=True)

    def test_trace_needs_costs(self):
        with pytest.raises(JobSpecError, match="costs"):
            workload_from_spec({"kind": "trace"})
        wl = workload_from_spec({"kind": "trace", "costs": [1, 2, 3]})
        assert wl.size == 3

    def test_mandelbrot_with_reorder(self):
        wl = workload_from_spec(
            {"kind": "mandelbrot", "width": 64, "height": 32, "sf": 4}
        )
        assert wl.size == 64
        assert isinstance(wl.inner, MandelbrotWorkload)
        assert wl.sf == 4

    def test_unknown_kind_lists_known(self):
        with pytest.raises(JobSpecError, match="uniform"):
            workload_from_spec({"kind": "fractal"})

    def test_missing_size(self):
        with pytest.raises(JobSpecError, match="size"):
            workload_from_spec({"kind": "uniform"})

    def test_non_object(self):
        with pytest.raises(JobSpecError, match="object"):
            workload_from_spec("uniform")


class TestClusterFromSpec:
    def test_default_is_homogeneous(self):
        cluster = cluster_from_spec(None)
        assert len(cluster.nodes) == 4
        assert {n.speed for n in cluster.nodes} == {100.0}

    def test_workers_shorthand(self):
        assert len(cluster_from_spec({"workers": 7}).nodes) == 7
        with pytest.raises(JobSpecError, match="workers"):
            cluster_from_spec({"workers": 0})

    def test_explicit_nodes(self):
        cluster = cluster_from_spec({
            "nodes": [
                {"name": "fast", "speed": 300.0, "segment": "a"},
                {"speed": 100.0, "fails_at": 2.5},
            ],
            "master_service": 1e-3,
        })
        assert cluster.nodes[0].name == "fast"
        assert cluster.nodes[1].fails_at == 2.5
        assert cluster.master_service == 1e-3

    def test_node_without_speed_rejected(self):
        with pytest.raises(JobSpecError, match="speed"):
            cluster_from_spec({"nodes": [{"name": "x"}]})

    @pytest.mark.parametrize("spec, match", [
        ({"nodes": [{"speed": 1.0, "latency": "bogus"}]}, "latency"),
        ({"nodes": [{"speed": "fast"}]}, "speed"),
        ({"nodes": [{"speed": -1.0}]}, "bad node 0"),
        ({"nodes": "nope"}, "array"),
        ({"workers": "many"}, "workers"),
        ({"master_service": [1, 2]}, "master_service"),
    ])
    def test_junk_values_become_bad_spec(self, spec, match):
        # Every conversion must surface as a JobSpecError (-> the
        # daemon's bad-spec rejection), never escape and kill the
        # connection handler.
        with pytest.raises(JobSpecError, match=match):
            cluster_from_spec(spec)


class TestJobFromSpec:
    SPEC = {
        "scheme": "TSS",
        "workload": {"kind": "uniform", "size": 120, "unit": 1e-4},
        "cluster": {"workers": 3},
        "tag": "t",
    }

    def test_junk_chaos_scale_rejected(self):
        spec = dict(self.SPEC)
        spec["chaos"] = {"seed": 1, "faults": []}
        spec["chaos_scale"] = "big"
        with pytest.raises(JobSpecError, match="chaos_scale"):
            job_from_spec(spec)

    def test_builds_the_one_shot_job(self):
        job = job_from_spec(self.SPEC)
        assert isinstance(job, SimJob)
        assert job.scheme == "TSS"
        assert job.engine == "master"
        assert job.collect_events is True
        # Same spec -> same deterministic job key.
        assert job.key == job_from_spec(dict(self.SPEC)).key

    def test_digest_identity_with_one_shot(self):
        """The service correctness contract, in miniature: the job a
        spec builds runs to the same canonical digest every time."""
        d1 = stream_digest(job_from_spec(self.SPEC).run().obs_events)
        d2 = stream_digest(job_from_spec(self.SPEC).run().obs_events)
        assert d1 == d2

    def test_adaptive_spec_accepted(self):
        job = job_from_spec(dict(self.SPEC, scheme="adaptive:TSS+FSS@4"))
        assert job.scheme == "adaptive:TSS+FSS@4"

    def test_unknown_scheme_rejected_at_admission(self):
        with pytest.raises(JobSpecError):
            job_from_spec(dict(self.SPEC, scheme="ZIGZAG"))

    def test_missing_scheme(self):
        with pytest.raises(JobSpecError, match="scheme"):
            job_from_spec({"workload": {"kind": "uniform", "size": 5}})

    def test_chaos_plan_roundtrips(self):
        from repro.chaos import FaultPlan

        plan = FaultPlan.random(seed=3, workers=3, horizon=5.0)
        job = job_from_spec(
            dict(self.SPEC, chaos=plan.to_json(), chaos_scale=0.5)
        )
        embedded = job.params["chaos"]
        assert embedded == plan.scaled(0.5)

    def test_bad_chaos_plan(self):
        with pytest.raises(JobSpecError, match="chaos"):
            job_from_spec(dict(self.SPEC, chaos={"events": [{"kind": "??"}]}))

    def test_results_flag_maps_to_collect_results(self):
        job = job_from_spec(dict(self.SPEC, results=True))
        assert job.params.get("collect_results") is True

    def test_bad_engine_rejected(self):
        with pytest.raises(JobSpecError):
            job_from_spec(dict(self.SPEC, engine="quantum"))
