"""WorkerPool: dispatch, fairness, death recovery, ledger audit."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import stream_digest
from repro.runtime.config import RuntimeConfig
from repro.service.jobs import job_from_spec
from repro.service.pool import JobRecord, WorkerPool
from repro.verify import audit_service_log

FAST_SPEC = {
    "scheme": "TSS",
    "workload": {"kind": "uniform", "size": 100, "unit": 1e-4},
    "cluster": {"workers": 2},
}
# "Slow" means wall-clock slow for the *worker process*: SS over a
# large loop makes the DES grind through one event pair per iteration
# (~2s), leaving a wide window to SIGKILL mid-job.
SLOW_SPEC = {
    "scheme": "SS",
    "workload": {"kind": "uniform", "size": 60000, "unit": 1e-4},
    "cluster": {"workers": 2},
}

SNAPPY = RuntimeConfig(
    poll_timeout=0.05,
    worker_deadline=20.0,
    heartbeat_interval=0.2,
    join_timeout=5.0,
)


class _Sink(object):
    """Completion collector usable as the pool's on_complete hook."""

    def __init__(self):
        self.done: dict[str, JobRecord] = {}
        self._event = threading.Event()

    def __call__(self, record: JobRecord) -> None:
        self.done[record.job_id] = record
        self._event.set()

    def wait_for(self, *job_ids: str, timeout: float = 120.0) -> None:
        deadline = time.monotonic() + timeout
        while not all(j in self.done for j in job_ids):
            remaining = deadline - time.monotonic()
            assert remaining > 0, (
                f"timed out; finished: {sorted(self.done)}"
            )
            self._event.wait(min(remaining, 0.2))
            self._event.clear()


def _record(job_id: str, tenant: str, spec: dict, **kw) -> JobRecord:
    return JobRecord(
        job_id=job_id, tenant=tenant, job=job_from_spec(spec), **kw
    )


class TestValidation:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError, match="size"):
            WorkerPool(size=0)

    def test_kill_worker_bounds(self):
        pool = WorkerPool(size=1, config=SNAPPY)
        with pytest.raises(ValueError, match="slot"):
            pool.kill_worker(5)
        # Not started: no live process to kill.
        assert pool.kill_worker(0) is False


class TestExecution:
    def test_single_job_digest_matches_one_shot(self):
        reference = stream_digest(
            job_from_spec(FAST_SPEC).run().obs_events
        )
        sink = _Sink()
        with WorkerPool(size=1, config=SNAPPY,
                        on_complete=sink) as pool:
            pool.submit(_record("j1", "alice", FAST_SPEC))
            sink.wait_for("j1")
        record = sink.done["j1"]
        assert record.state == "done"
        assert record.payload["digest"] == reference
        assert record.payload["result"]["scheme"] == "TSS"

    def test_many_jobs_across_tenants_all_complete(self):
        sink = _Sink()
        ids = [f"j{i}" for i in range(6)]
        with WorkerPool(size=2, config=SNAPPY,
                        on_complete=sink) as pool:
            for i, job_id in enumerate(ids):
                pool.submit(_record(
                    job_id, f"tenant{i % 3}", FAST_SPEC
                ))
            sink.wait_for(*ids)
            assert pool.idle()
        digests = {sink.done[j].payload["digest"] for j in ids}
        assert len(digests) == 1  # identical jobs, identical digests
        report = audit_service_log(pool.log)
        assert report.ok, report.summary()

    def test_round_robin_interleaves_tenants(self):
        """With both tenants queued up before any dispatch, assignment
        order must alternate tenants, not drain one FIFO first."""
        sink = _Sink()
        pool = WorkerPool(size=1, config=SNAPPY, on_complete=sink)
        # Queue before starting so dispatch sees both tenants.
        ids = []
        for i in range(2):
            for tenant in ("a", "b"):
                job_id = f"{tenant}{i}"
                ids.append(job_id)
                pool.submit(_record(job_id, tenant, FAST_SPEC))
        with pool:
            sink.wait_for(*ids)
        assigns = [
            e["job"] for e in pool.log if e["ev"] == "assign"
        ]
        tenants = [j[0] for j in assigns]
        assert tenants in (["a", "b"] * 2, ["b", "a"] * 2), tenants

    def test_failing_job_reports_error(self):
        # conditional workload with a bogus predicate parameter is
        # caught at spec time; instead ship a job whose run raises:
        # scheme params unknown to the simulator.
        sink = _Sink()
        bad = dict(FAST_SPEC, params={"no_such_kwarg": 1})
        with WorkerPool(size=1, config=SNAPPY,
                        on_complete=sink) as pool:
            pool.submit(_record("bad", "alice", bad))
            sink.wait_for("bad")
        record = sink.done["bad"]
        assert record.state == "failed"
        assert "TypeError" in record.payload["error"]
        report = audit_service_log(pool.log)
        assert report.ok, report.summary()


class TestDeathRecovery:
    def _wait_busy(self, pool: WorkerPool, timeout: float = 15.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            busy = pool.busy_slots()
            if busy:
                return next(iter(busy))
            time.sleep(0.02)
        raise AssertionError("no job ever started running")

    def test_sigkill_requeues_and_recovers_exactly_once(self):
        reference = stream_digest(
            job_from_spec(SLOW_SPEC).run().obs_events
        )
        sink = _Sink()
        with WorkerPool(size=1, config=SNAPPY,
                        on_complete=sink) as pool:
            pool.submit(_record("victim", "alice", SLOW_SPEC))
            slot = self._wait_busy(pool)
            assert pool.kill_worker(slot) is True
            sink.wait_for("victim")
        record = sink.done["victim"]
        assert record.state == "done"
        assert record.requeues == 1
        assert record.payload["digest"] == reference
        events = [e["ev"] for e in pool.log]
        assert "worker-death" in events and "requeue" in events
        audit_service_log(pool.log).raise_if_failed()

    def test_too_many_requeues_fails_terminally(self):
        sink = _Sink()
        with WorkerPool(size=1, config=SNAPPY, on_complete=sink,
                        max_requeues=1) as pool:
            pool.submit(_record("cursed", "alice", SLOW_SPEC))
            for _ in range(2):
                slot = self._wait_busy(pool)
                pool.kill_worker(slot)
                time.sleep(0.3)  # let the pump revive + redispatch
            sink.wait_for("cursed")
        record = sink.done["cursed"]
        assert record.state == "failed"
        assert "too-many-requeues" in record.payload["error"]
        audit_service_log(pool.log).raise_if_failed()

    def test_bystander_tenant_digest_unaffected_by_kill(self):
        """The acceptance scenario at pool level: killing the worker
        running tenant A's job must not perturb tenant B's digest."""
        ref_fast = stream_digest(
            job_from_spec(FAST_SPEC).run().obs_events
        )
        sink = _Sink()
        with WorkerPool(size=2, config=SNAPPY,
                        on_complete=sink) as pool:
            pool.submit(_record("a-slow", "alice", SLOW_SPEC))
            # Wait for alice's job to occupy a slot, then kill it.
            slot = self._wait_busy(pool)
            pool.submit(_record("b-fast", "bob", FAST_SPEC))
            pool.kill_worker(slot)
            sink.wait_for("a-slow", "b-fast")
        assert sink.done["b-fast"].payload["digest"] == ref_fast
        assert sink.done["b-fast"].requeues == 0
        assert sink.done["a-slow"].state == "done"
        assert sink.done["a-slow"].requeues >= 1
        audit_service_log(pool.log).raise_if_failed()
