"""Frame codec: framing, caps, incremental decode, both IO styles."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.service.protocol import (
    MAX_FRAME,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)


class TestEncode:
    def test_roundtrip_layout(self):
        frame = encode_frame({"op": "ping", "seq": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert FrameDecoder().feed(frame) == [{"op": "ping", "seq": 1}]

    def test_payload_is_canonical_json(self):
        # sort_keys + compact separators: identical docs encode
        # identically regardless of insertion order.
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b
        assert b"\n" not in a and b" " not in a[4:]

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            encode_frame(["not", "an", "object"])

    def test_rejects_oversized(self):
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            encode_frame({"pad": "x" * (MAX_FRAME + 1)})


class TestFrameDecoder:
    def test_byte_at_a_time(self):
        frame = encode_frame({"op": "hello", "tenant": "alice"})
        decoder = FrameDecoder()
        out = []
        for i in range(len(frame)):
            out.extend(decoder.feed(frame[i:i + 1]))
        assert out == [{"op": "hello", "tenant": "alice"}]
        assert decoder.pending_bytes == 0

    def test_many_frames_one_chunk(self):
        docs = [{"n": i} for i in range(5)]
        blob = b"".join(encode_frame(d) for d in docs)
        assert FrameDecoder().feed(blob) == docs

    def test_split_across_chunks_keeps_remainder(self):
        f1 = encode_frame({"n": 1})
        f2 = encode_frame({"n": 2})
        decoder = FrameDecoder()
        assert decoder.feed(f1 + f2[:3]) == [{"n": 1}]
        assert decoder.pending_bytes == 3
        assert decoder.feed(f2[3:]) == [{"n": 2}]

    def test_oversized_length_prefix_rejected_before_buffering(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            decoder.feed(struct.pack(">I", MAX_FRAME + 1))

    def test_undecodable_payload(self):
        bogus = b"\xff\xfe not json"
        frame = struct.pack(">I", len(bogus)) + bogus
        with pytest.raises(ProtocolError, match="undecodable"):
            FrameDecoder().feed(frame)

    def test_non_object_payload(self):
        payload = b"[1,2,3]"
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="JSON object"):
            FrameDecoder().feed(frame)


class TestBlockingSockets:
    def _pair(self):
        return socket.socketpair()

    def test_roundtrip(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "ping"})
            assert recv_frame(b) == {"op": "ping"}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_raises(self):
        a, b = self._pair()
        try:
            frame = encode_frame({"op": "ping"})
            a.sendall(frame[:len(frame) - 2])
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_torn_header_raises(self):
        a, b = self._pair()
        try:
            a.sendall(b"\x00\x00")
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = self._pair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME + 1))
            with pytest.raises(ProtocolError, match="MAX_FRAME"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestAsyncioStreams:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_roundtrip_over_unix_socket(self, tmp_path):
        path = str(tmp_path / "t.sock")

        async def scenario():
            got = []

            async def handler(reader, writer):
                got.append(await read_frame(reader))
                await write_frame(writer, {"pong": True})
                writer.close()

            server = await asyncio.start_unix_server(handler, path=path)
            reader, writer = await asyncio.open_unix_connection(path)
            await write_frame(writer, {"op": "ping"})
            reply = await read_frame(reader)
            assert await read_frame(reader) is None  # clean EOF
            writer.close()
            server.close()
            await server.wait_closed()
            return got, reply

        got, reply = self._run(scenario())
        assert got == [{"op": "ping"}]
        assert reply == {"pong": True}

    def test_async_and_blocking_interoperate(self, tmp_path):
        """The client library's blocking codec against the daemon's
        asyncio codec -- the actual production pairing."""
        path = str(tmp_path / "t.sock")

        async def serve_once():
            done = asyncio.Event()

            async def handler(reader, writer):
                doc = await read_frame(reader)
                await write_frame(writer, {"echo": doc})
                writer.close()
                done.set()

            server = await asyncio.start_unix_server(handler, path=path)
            ready.set()
            await done.wait()
            server.close()
            await server.wait_closed()

        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(serve_once()), daemon=True
        )
        thread.start()
        assert ready.wait(5.0)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(path)
        try:
            send_frame(sock, {"op": "ping", "seq": 9})
            assert recv_frame(sock) == {"echo": {"op": "ping", "seq": 9}}
        finally:
            sock.close()
        thread.join(timeout=5.0)
