"""ServiceServer end-to-end: tenants, digests, admission, drain.

These tests run a real daemon (asyncio on a background thread, real
worker processes, real Unix sockets) and drive it with the blocking
:class:`~repro.service.client.ServiceClient` -- the production
pairing.  The acceptance checks from the issue live here:

* >= 4 concurrent tenants on one shared pool, each getting a canonical
  stream digest bit-identical to the one-shot ``SimJob`` equivalent;
* admission control bounds memory: hammering a full queue yields
  reasoned rejects, not unbounded queueing;
* graceful drain finishes in-flight jobs and rejects new ones.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.obs import stream_digest
from repro.runtime.config import RuntimeConfig
from repro.service import ServiceClient, ServiceError
from repro.service.jobs import job_from_spec
from repro.service.server import ServiceConfig, ServiceServer
from repro.verify import audit_service_log

SNAPPY = RuntimeConfig(
    poll_timeout=0.05,
    worker_deadline=20.0,
    heartbeat_interval=0.2,
    join_timeout=5.0,
)


def tenant_spec(i: int) -> dict:
    """Per-tenant distinct jobs (scheme and size differ)."""
    schemes = ["TSS", "GSS", "FSS", "CSS", "adaptive:TSS+FSS@4"]
    return {
        "scheme": schemes[i % len(schemes)],
        "workload": {
            "kind": "uniform", "size": 150 + 25 * i, "unit": 1e-4,
        },
        "cluster": {"workers": 3},
        "tag": f"tenant-{i}",
    }


class _Daemon(object):
    """A live daemon on a background thread, torn down on exit."""

    def __init__(self, tmp_path, **config_kwargs):
        self.sock = str(tmp_path / "repro.sock")
        kwargs = dict(workers=2, socket_path=self.sock)
        kwargs.update(config_kwargs)
        kwargs.setdefault("runtime", SNAPPY)
        self.server = ServiceServer(ServiceConfig(**kwargs))
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                self.server.serve(install_signals=False)
            ),
            daemon=True,
        )

    def __enter__(self):
        self._thread.start()
        # Wait for the socket to accept (client retries handle it).
        probe = ServiceClient.connect(
            self.sock, tenant="probe", retry_for=10.0
        )
        probe.close()
        return self

    def __exit__(self, *exc):
        if self._thread.is_alive():
            try:
                with self.client("teardown") as c:
                    c.drain()
            except Exception:
                pass
            self._thread.join(timeout=30.0)

    def client(self, tenant: str) -> ServiceClient:
        return ServiceClient.connect(
            self.sock, tenant=tenant, retry_for=5.0
        )


class TestBasics:
    def test_hello_ping_status(self, tmp_path):
        with _Daemon(tmp_path) as d, d.client("alice") as c:
            assert c.server_info["tenant"] == "alice"
            assert c.ping()
            status = c.status()
            assert status["pool"]["workers"] == 2
            assert status["draining"] is False

    def test_bad_spec_rejected_with_reason(self, tmp_path):
        with _Daemon(tmp_path) as d, d.client("alice") as c:
            with pytest.raises(ServiceError) as err:
                c.submit({"scheme": "NOPE",
                          "workload": {"kind": "uniform", "size": 5}})
            assert err.value.reason == "bad-spec"

    def test_unknown_op(self, tmp_path):
        with _Daemon(tmp_path) as d, d.client("alice") as c:
            with pytest.raises(ServiceError) as err:
                c._checked({"op": "teleport"})
            assert err.value.reason == "unknown-op"

    def test_wait_is_tenant_isolated(self, tmp_path):
        with _Daemon(tmp_path) as d:
            with d.client("alice") as alice, d.client("bob") as bob:
                job_id = alice.submit(tenant_spec(0))
                with pytest.raises(ServiceError) as err:
                    bob.wait(job_id, timeout=5)
                assert err.value.reason == "unknown-job"
                assert alice.wait(job_id, timeout=60)["state"] == "done"


class TestMultiTenantDigests:
    def test_four_tenants_bit_identical_to_one_shot(self, tmp_path):
        """The tentpole acceptance: 4 concurrent tenants sharing one
        pool, every job's digest bit-equal to its one-shot run."""
        n = 4
        references = [
            stream_digest(job_from_spec(tenant_spec(i)).run().obs_events)
            for i in range(n)
        ]
        assert len(set(references)) == n  # genuinely distinct jobs

        outs: dict[int, dict] = {}
        errors: list[Exception] = []

        def tenant_thread(i: int, daemon: _Daemon) -> None:
            try:
                with daemon.client(f"tenant-{i}") as c:
                    outs[i] = c.run(tenant_spec(i), timeout=120)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        with _Daemon(tmp_path) as d:
            threads = [
                threading.Thread(target=tenant_thread, args=(i, d))
                for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert not errors, errors
            with d.client("auditor") as c:
                ledger = c.log()
                trace = c.trace("*")
        for i in range(n):
            assert outs[i]["state"] == "done"
            assert outs[i]["digest"] == references[i], f"tenant {i}"
        audit_service_log(ledger).raise_if_failed()
        # Every tenant's lifecycle shows in the merged trace.
        details = " ".join(e.get("detail", "") for e in trace)
        for i in range(n):
            assert f"tenant=tenant-{i}" in details

    def test_trace_scoped_to_tenant(self, tmp_path):
        with _Daemon(tmp_path) as d:
            with d.client("alice") as alice, d.client("bob") as bob:
                alice.run(tenant_spec(0), timeout=60)
                bob.run(tenant_spec(1), timeout=60)
                mine = alice.trace()
                assert mine and all(
                    "tenant=alice" in e["detail"] for e in mine
                )


class TestAdmissionControl:
    def test_queue_capacity_rejects_not_oom(self, tmp_path):
        """10x oversubmission against a tiny queue: the overflow is
        rejected with a reason, and admitted+pending never exceeds
        capacity -- bounded memory by construction."""
        capacity = 4
        with _Daemon(
            tmp_path, workers=1, queue_capacity=capacity,
            tenant_capacity=capacity,
        ) as d, d.client("flood") as c:
            admitted, rejected = [], []
            for i in range(10 * capacity):
                try:
                    admitted.append(c.submit(tenant_spec(0)))
                except ServiceError as exc:
                    assert exc.reason in ("queue-full", "tenant-quota")
                    rejected.append(exc.reason)
            assert rejected, "oversubmission was never rejected"
            status = c.status()
            pending = (
                status["pool"]["queued"]
                + status["pool"]["inflight"]
                + status["resolving"]
            )
            assert pending <= capacity
            # Everything admitted still completes.
            for job_id in admitted:
                assert c.wait(job_id, timeout=120)["state"] == "done"
            metrics = c.metrics()
            assert metrics["jobs_rejected_total"]["value"] \
                == len(rejected)

    def test_tenant_quota_is_per_tenant(self, tmp_path):
        # greedy's first job must still be pending when the second
        # submit lands, so make it wall-clock slow (SS = one event
        # pair per iteration keeps the DES busy ~2s).
        slow = dict(tenant_spec(0), scheme="SS",
                    workload={"kind": "uniform", "size": 60000,
                              "unit": 1e-4})
        with _Daemon(
            tmp_path, workers=1, queue_capacity=64, tenant_capacity=1,
        ) as d:
            with d.client("greedy") as greedy, \
                    d.client("modest") as modest:
                first = greedy.submit(slow)
                with pytest.raises(ServiceError) as err:
                    greedy.submit(tenant_spec(0))
                assert err.value.reason == "tenant-quota"
                # The quota binds greedy, not modest.
                other = modest.submit(tenant_spec(1))
                assert greedy.wait(first, timeout=60)["state"] == "done"
                assert modest.wait(other, timeout=60)["state"] == "done"


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new(self, tmp_path):
        # The in-flight job must outlive the drain request, so make it
        # wall-clock slow (SS grinds one event pair per iteration).
        slow = dict(tenant_spec(0), scheme="SS",
                    workload={"kind": "uniform", "size": 60000,
                              "unit": 1e-4})
        with _Daemon(tmp_path, workers=1) as d:
            with d.client("alice") as c:
                job_id = c.submit(slow)
                c.drain()
                with pytest.raises(ServiceError) as err:
                    c.submit(tenant_spec(0))
                assert err.value.reason == "draining"
                # The in-flight job still completes and is waitable.
                out = c.wait(job_id, timeout=60)
                assert out["state"] == "done"
            d._thread.join(timeout=30.0)
            assert not d._thread.is_alive(), "daemon failed to drain"

    def test_metrics_snapshot_shape(self, tmp_path):
        with _Daemon(tmp_path) as d, d.client("alice") as c:
            c.run(tenant_spec(0), timeout=60)
            metrics = c.metrics()
            assert metrics["jobs_submitted_total"]["value"] == 1
            assert metrics["jobs_completed_total"]["value"] == 1
            assert metrics["queue_wait_seconds"]["count"] == 1
            assert metrics["workers_live"]["value"] == 2
