"""Live telemetry over the service wire: subscribe / watch / top.

The acceptance checks from the issue live here:

* a subscriber sees chunk-level events *while* the job runs (at least
  one ``compute`` frame lands before the job's terminal event);
* stream fidelity: after :func:`~repro.obs.canonical_stream` the
  subscriber's events are byte-identical to the server-side tenant
  trace, the cumulative drop count is declared in every frame, and the
  job's ``stream_digest`` is bit-identical to a one-shot run that was
  never subscribed -- streaming is a tap, not a second code path;
* the incremental merged trace (``events_for``) and the cursor poll
  (``events_since``) agree with the ground-truth per-tenant buffers.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.obs import ObsEvent, stream_digest
from repro.runtime.config import RuntimeConfig
from repro.service import ServiceClient, ServiceError
from repro.service.cli import TopState, _rolling_gauges
from repro.service.jobs import job_from_spec
from repro.service.server import (
    ServiceConfig,
    ServiceServer,
    SUBSCRIBER_QUEUE,
)
from repro.verify import audit_subscription

SNAPPY = RuntimeConfig(
    poll_timeout=0.05,
    worker_deadline=20.0,
    heartbeat_interval=0.2,
    join_timeout=5.0,
)

SPEC = {
    "scheme": "TSS",
    "workload": {"kind": "uniform", "size": 200, "unit": 1e-4},
    "cluster": {"workers": 3},
    "tag": "watched",
}


class _Daemon(object):
    """A live daemon on a background thread, torn down on exit."""

    def __init__(self, tmp_path, **config_kwargs):
        self.sock = str(tmp_path / "repro.sock")
        kwargs = dict(workers=2, socket_path=self.sock)
        kwargs.update(config_kwargs)
        kwargs.setdefault("runtime", SNAPPY)
        self.server = ServiceServer(ServiceConfig(**kwargs))
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                self.server.serve(install_signals=False)
            ),
            daemon=True,
        )

    def __enter__(self):
        self._thread.start()
        probe = ServiceClient.connect(
            self.sock, tenant="probe", retry_for=10.0
        )
        probe.close()
        return self

    def __exit__(self, *exc):
        if self._thread.is_alive():
            try:
                with self.client("teardown") as c:
                    c.drain()
            except Exception:
                pass
            self._thread.join(timeout=30.0)

    def client(self, tenant: str) -> ServiceClient:
        return ServiceClient.connect(
            self.sock, tenant=tenant, retry_for=5.0
        )


def _collect(daemon, tenant: str, spec: dict):
    """Submit ``spec`` while a same-tenant subscriber watches.

    Returns ``(frames, result, trace)`` -- every pushed frame, the
    job's terminal payload, and the server-side tenant trace.
    """
    with daemon.client(tenant) as watcher:
        # Subscribe before submitting: the daemon marks jobs for
        # worker-side streaming only when a matching subscriber is
        # attached at admission (or the spec asks with "stream").
        watcher.subscribe()
        with daemon.client(tenant) as submitter:
            job_id = submitter.submit(spec)
            frames = list(
                watcher.watch(job_id=job_id, timeout=60.0)
            )
            result = submitter.wait(job_id, timeout=120.0)
            trace = submitter.trace()
    return frames, result, trace


def _streamed_events(frames) -> list[ObsEvent]:
    return [
        ObsEvent.from_dict(d)
        for frame in frames
        for d in frame.get("events", ())
    ]


class TestLiveStream:
    def test_chunk_events_arrive_before_terminal(self, tmp_path):
        with _Daemon(tmp_path) as d:
            frames, result, _ = _collect(d, "alice", SPEC)
        assert result["state"] == "done"
        kinds = [ev.kind for ev in _streamed_events(frames)]
        assert "compute" in kinds, \
            "no chunk-level event ever reached the subscriber"
        assert kinds.index("compute") < kinds.index("job-result"), \
            "chunk events arrived only after the terminal event"
        # Every frame declares its place in the stream and the
        # cumulative loss; this run is fast enough to lose nothing.
        assert [f["n"] for f in frames] == list(
            range(1, len(frames) + 1)
        )
        assert frames[-1]["drops"] == 0

    def test_stream_is_a_tap_not_a_second_source(self, tmp_path):
        """Acceptance: digest(streamed) == digest(server trace) ==
        digest(one-shot, never-subscribed run)."""
        reference = stream_digest(job_from_spec(SPEC).run().obs_events)
        with _Daemon(tmp_path) as d:
            frames, result, trace_docs = _collect(d, "alice", SPEC)
        streamed = _streamed_events(frames)
        trace = [ObsEvent.from_dict(doc) for doc in trace_docs]
        assert stream_digest(streamed) == stream_digest(trace)
        assert result["digest"] == reference
        assert stream_digest(streamed) == reference
        audit_subscription(
            frames, trace=trace, complete=True
        ).raise_if_failed()

    def test_wildcard_subscriber_sees_every_tenant(self, tmp_path):
        with _Daemon(tmp_path) as d:
            with d.client("watcher") as watcher:
                watcher.subscribe(tenant="*")
                with d.client("alice") as a, d.client("bob") as b:
                    ja = a.submit(SPEC)
                    jb = b.submit(dict(SPEC, tag="bob"))
                    a.wait(ja, timeout=120.0)
                    b.wait(jb, timeout=120.0)
                seen = set()
                deadline = 60.0
                for frame in watcher.watch(timeout=deadline):
                    seen.add(frame.get("tenant"))
                    if {"alice", "bob"} <= seen:
                        break
        assert {"alice", "bob"} <= seen

    def test_double_subscribe_rejected_both_sides(self, tmp_path):
        with _Daemon(tmp_path) as d, d.client("alice") as c:
            # The daemon accepts the aliased op name too.
            reply = c._request({"op": "watch", "tenant": "alice"})
            assert reply.get("subscribed") is True
            assert reply.get("queue_capacity") == SUBSCRIBER_QUEUE
            # Server side: a second subscribe on the same (now
            # streaming, but idle) connection is refused.
            reply = c._request({"op": "subscribe"})
            assert reply.get("ok") is False
            assert reply.get("error") == "already-subscribed"
            # Client side: the guard trips before any frame is sent.
            c._subscribed = True
            with pytest.raises(ServiceError) as err:
                c.subscribe()
            assert err.value.reason == "already-subscribed"

    def test_subscriber_metrics_exposed(self, tmp_path):
        with _Daemon(tmp_path) as d:
            with d.client("watcher") as watcher:
                watcher.subscribe(tenant="alice")
                with d.client("alice") as c:
                    c.run(SPEC, timeout=120.0)
                    snapshot = c.metrics()
        assert snapshot["stream_subscribers"]["value"] == 1.0
        assert snapshot["stream_events_total"]["value"] > 0
        assert "rolling_chunk_rate" in snapshot
        assert "rolling_utilization" in snapshot
        gauges = _rolling_gauges(snapshot)
        assert gauges["chunk_rate"] > 0.0


class TestIncrementalTrace:
    def _server(self) -> ServiceServer:
        return ServiceServer(ServiceConfig(socket_path="unused"))

    @staticmethod
    def _ev(t: float, kind: str = "job-submit") -> ObsEvent:
        return ObsEvent(kind=kind, source="service", t=t)

    def test_merged_view_is_incremental_and_sorted(self):
        server = self._server()
        server._record_event("b", self._ev(2.0))
        server._record_event("a", self._ev(1.0))
        merged = server.events_for(None)
        assert [ev.t for ev in merged] == [1.0, 2.0]
        # A later append folds in without rebuilding from scratch:
        # the per-tenant cursors advance past what was merged.
        assert server._merged_idx == {"a": 1, "b": 1}
        server._record_event("a", self._ev(3.0))
        server._record_event("b", self._ev(0.5))
        merged = server.events_for(None)
        assert [ev.t for ev in merged] == [0.5, 1.0, 2.0, 3.0]
        assert server._merged_idx == {"a": 2, "b": 2}
        # No fresh events: the cached merge is returned as-is.
        assert server.events_for(None) is merged

    def test_events_since_cursor_poll(self):
        server = self._server()
        events, cursor = server.events_since("a")
        assert events == [] and cursor == 0
        server._record_event("a", self._ev(1.0))
        server._record_event("a", self._ev(2.0))
        events, cursor = server.events_since("a", cursor)
        assert [ev.t for ev in events] == [1.0, 2.0]
        server._record_event("a", self._ev(3.0))
        events, cursor = server.events_since("a", cursor)
        assert [ev.t for ev in events] == [3.0]
        events, cursor = server.events_since("a", cursor)
        assert events == [] and cursor == 3


class TestTopState:
    def _frame(self, n, tenant, events, drops=0):
        return {"watch": "events", "n": n, "drops": drops,
                "tenant": tenant, "events": events}

    def test_absorbs_chunks_and_jobs(self):
        state = TopState()
        state.absorb(self._frame(1, "alice", [
            {"kind": "job-submit", "detail": "tenant=alice job=a-1"},
            {"kind": "compute", "worker": 0, "start": 0, "stop": 8,
             "value": 0.5},
            {"kind": "compute", "worker": 1, "start": 8, "stop": 12,
             "value": 0.25},
        ]))
        assert state.running == {"a-1"}
        assert state.workers[("alice", 0)] == [1, 8, 0.5, 8]
        assert state.workers[("alice", 1)] == [1, 4, 0.25, 4]
        state.absorb(self._frame(2, "alice", [
            {"kind": "job-result", "value": 1.5,
             "detail": "tenant=alice job=a-1"},
        ], drops=3))
        assert state.running == set()
        assert state.drops == 3
        text = state.render({"chunk_rate": 2.0})
        assert "alice" in text and "chunk_rate=2" in text
        assert "a-1 result" in text
        assert "frames=2" in state.summary()

    def test_render_without_activity(self):
        assert TopState().render().startswith("repro-top")


@pytest.mark.slow
class TestChaosStream:
    """Seeded-chaos acceptance: the stream survives a mid-loop kill."""

    SLOW_SPEC = {
        "scheme": "SS",
        "workload": {"kind": "uniform", "size": 60000, "unit": 1e-4},
        "cluster": {"workers": 2},
    }

    def test_seeded_kill_keeps_stream_and_digest_faithful(
        self, tmp_path
    ):
        """A watcher subscribed through a seeded worker kill sees the
        partial first incarnation *and* the recovery re-execution --
        exactly what the server-side trace records (byte-identical
        after canonical_stream when nothing was dropped), with the
        cumulative drop count declared in every frame, and the job's
        digest still bit-identical to a never-subscribed one-shot."""
        from repro.chaos import FaultPlan, WorkerDeath
        from repro.obs import canonical_stream

        reference = stream_digest(
            job_from_spec(self.SLOW_SPEC).run().obs_events
        )
        plan = FaultPlan(events=(
            WorkerDeath(worker=0, at=0.6),
            WorkerDeath(worker=1, at=0.6),
        ))
        with _Daemon(tmp_path) as d:
            with d.client("alice") as watcher:
                watcher.subscribe()
                with d.client("alice") as c:
                    jid = c.submit(self.SLOW_SPEC)
                    assert c.inject_chaos(plan.to_json()) == 2
                    frames = list(
                        watcher.watch(job_id=jid, timeout=240.0)
                    )
                    out = c.wait(jid, timeout=240.0)
                    trace = [
                        ObsEvent.from_dict(doc) for doc in c.trace()
                    ]
        assert out["state"] == "done"
        assert out["requeues"] >= 1, \
            "seeded kill never interrupted the watched job"
        assert out["digest"] == reference, \
            "streaming perturbed the job's canonical digest"
        drops = frames[-1]["drops"]
        streamed = _streamed_events(frames)
        audit_subscription(
            frames, trace=trace, complete=(drops == 0)
        ).raise_if_failed()
        if drops == 0:
            assert canonical_stream(streamed) == \
                canonical_stream(trace)
        kinds = [ev.kind for ev in streamed]
        assert "compute" in kinds
        assert kinds.index("compute") < kinds.index("job-result")
