"""Tests for the affinity-scheduling engine (paper reference [12])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import simulate_affinity
from repro.workloads import UniformWorkload

from tests.conftest import make_cluster


class TestCompletion:
    def test_all_iterations_computed(self, reordered_mandelbrot,
                                     hetero_cluster):
        result = simulate_affinity(reordered_mandelbrot, hetero_cluster)
        assert result.total_iterations == reordered_mandelbrot.size
        assert result.scheme == "AS"

    def test_results_reproduce_serial(self, reordered_mandelbrot,
                                      hetero_cluster):
        result = simulate_affinity(
            reordered_mandelbrot, hetero_cluster, collect_results=True
        )
        serial = reordered_mandelbrot.execute_serial()
        np.testing.assert_array_equal(
            np.asarray(result.results).reshape(serial.shape), serial
        )

    def test_empty_loop(self, hetero_cluster):
        result = simulate_affinity(UniformWorkload(0), hetero_cluster)
        assert result.t_p == 0.0

    def test_single_worker(self):
        cluster = make_cluster(n_fast=1, n_slow=0)
        result = simulate_affinity(UniformWorkload(50), cluster)
        assert result.total_iterations == 50


class TestAffinityBehaviour:
    def test_geometric_self_serve_slices(self, uniform_workload):
        # A worker's own-queue takes shrink like GSS over its block.
        cluster = make_cluster(n_fast=1, n_slow=0)
        result = simulate_affinity(uniform_workload, cluster)
        sizes = [c.size for c in result.chunks]
        assert sizes[0] == -(-uniform_workload.size // 1)  # p=1: all
        # With p = 1 the whole block is one take; use p = 4 for shape.
        cluster4 = make_cluster(n_fast=4, n_slow=0)
        result4 = simulate_affinity(uniform_workload, cluster4)
        w0 = [c.size for c in result4.chunks if c.worker == 0]
        assert all(a >= b for a, b in zip(w0[:3], w0[1:4]))

    def test_steals_target_most_loaded(self, uniform_workload):
        # Fast PEs drain their queues and then relieve the slow ones.
        cluster = make_cluster(n_fast=2, n_slow=2)
        result = simulate_affinity(uniform_workload, cluster)
        assert result.rederivations > 0  # steal counter
        fast_iters = sum(
            w.iterations for w in result.workers[:2]
        )
        slow_iters = sum(
            w.iterations for w in result.workers[2:]
        )
        assert fast_iters > slow_iters

    def test_weighted_allocation(self, uniform_workload):
        cluster = make_cluster(n_fast=2, n_slow=2)
        even = simulate_affinity(uniform_workload, cluster)
        weighted = simulate_affinity(
            uniform_workload, cluster, weighted=True
        )
        assert weighted.rederivations <= even.rederivations

    def test_beats_static_on_heterogeneous_cluster(
        self, uniform_workload
    ):
        from repro.simulation import simulate

        cluster = make_cluster(n_fast=2, n_slow=2)
        static = simulate("S", uniform_workload, cluster)
        affinity = simulate_affinity(uniform_workload, cluster)
        assert affinity.t_p < static.t_p

    def test_deterministic(self, peak_workload):
        a = simulate_affinity(peak_workload, make_cluster())
        b = simulate_affinity(peak_workload, make_cluster())
        assert a.t_p == b.t_p
        assert a.rederivations == b.rederivations


class TestValidation:
    def test_bad_parameters(self, uniform_workload, hetero_cluster):
        from repro.simulation import SimulationError

        with pytest.raises(SimulationError):
            simulate_affinity(uniform_workload, hetero_cluster,
                              flush_interval=0.0)
        with pytest.raises(SimulationError):
            simulate_affinity(uniform_workload, hetero_cluster,
                              min_steal=1)
