"""Tests for cluster specs and metrics containers."""

from __future__ import annotations

import pytest

from repro.simulation import (
    ClusterSpec,
    ConstantLoad,
    NodeSpec,
    SimulationError,
    WorkerMetrics,
    imbalance,
)


class TestNodeSpec:
    def test_transfer_time(self):
        node = NodeSpec(name="n", speed=1.0, latency=0.01,
                        bandwidth=1000.0)
        assert node.transfer_time(500.0) == pytest.approx(0.51)
        assert node.transfer_time(0.0) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(SimulationError):
            NodeSpec(name="n", speed=0.0)
        with pytest.raises(SimulationError):
            NodeSpec(name="n", speed=1.0, latency=-1.0)
        with pytest.raises(SimulationError):
            NodeSpec(name="n", speed=1.0, bandwidth=0.0)
        node = NodeSpec(name="n", speed=1.0)
        with pytest.raises(SimulationError):
            node.transfer_time(-1.0)


class TestClusterSpec:
    def test_virtual_powers_derived_from_speeds(self):
        cluster = ClusterSpec(nodes=[
            NodeSpec(name="a", speed=300.0),
            NodeSpec(name="b", speed=100.0),
        ])
        assert cluster.virtual_powers() == [3.0, 1.0]

    def test_explicit_virtual_power_kept(self):
        cluster = ClusterSpec(nodes=[
            NodeSpec(name="a", speed=300.0, virtual_power=2.5),
            NodeSpec(name="b", speed=100.0),
        ])
        assert cluster.virtual_powers() == [2.5, 1.0]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSpec(nodes=[
                NodeSpec(name="x", speed=1.0),
                NodeSpec(name="x", speed=2.0),
            ])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSpec(nodes=[])

    def test_subset_recomputes_powers(self):
        cluster = ClusterSpec(nodes=[
            NodeSpec(name="a", speed=900.0),
            NodeSpec(name="b", speed=300.0),
            NodeSpec(name="c", speed=100.0),
        ])
        sub = cluster.subset([0, 1])
        assert sub.size == 2
        assert sub.virtual_powers() == [3.0, 1.0]

    def test_subset_empty_rejected(self):
        cluster = ClusterSpec(nodes=[NodeSpec(name="a", speed=1.0)])
        with pytest.raises(SimulationError):
            cluster.subset([])

    def test_load_default_dedicated(self):
        node = NodeSpec(name="n", speed=1.0)
        assert isinstance(node.load, ConstantLoad)
        assert node.load.q == 1


class TestMetrics:
    def test_row_format(self):
        m = WorkerMetrics(name="n", t_com=1.23, t_wait=4.56,
                          t_comp=7.89)
        assert m.row() == "1.2/4.6/7.9"

    def test_busy_sum(self):
        m = WorkerMetrics(name="n", t_com=1.0, t_wait=2.0, t_comp=3.0)
        assert m.busy == 6.0

    def test_imbalance(self):
        assert imbalance([1.0, 1.0, 1.0]) == 0.0
        assert imbalance([0.0, 2.0]) == pytest.approx(2.0)
        assert imbalance([]) == 0.0
        assert imbalance([0.0, 0.0]) == 0.0
