"""Integration tests for the master--slave DES engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CLASSIC_ACP, IMPROVED_ACP, AcpModel, make
from repro.simulation import (
    ClusterSpec,
    ConstantLoad,
    NodeSpec,
    SimulationError,
    StarvationError,
    StepLoad,
    simulate,
)
from repro.workloads import UniformWorkload

from tests.conftest import make_cluster

ALL_MASTER_SCHEMES = [
    "S", "SS", "CSS(8)", "GSS", "TSS", "FSS", "FISS", "TFSS", "WF",
    "DTSS", "DFSS", "DFISS", "DTFSS",
]


@pytest.mark.parametrize("scheme", ALL_MASTER_SCHEMES)
def test_every_scheme_completes_and_reproduces_serial(
    scheme, reordered_mandelbrot, hetero_cluster
):
    result = simulate(
        scheme, reordered_mandelbrot, hetero_cluster,
        collect_results=True,
    )
    assert result.total_iterations == reordered_mandelbrot.size
    serial = reordered_mandelbrot.execute_serial()
    np.testing.assert_array_equal(
        np.asarray(result.results).reshape(serial.shape), serial
    )
    assert result.t_p > 0


class TestAccounting:
    def test_time_buckets_nonnegative(self, uniform_workload,
                                      hetero_cluster):
        result = simulate("TSS", uniform_workload, hetero_cluster)
        for w in result.workers:
            assert w.t_com >= 0 and w.t_wait >= 0 and w.t_comp >= 0

    def test_comp_time_scales_with_speed(self, uniform_workload):
        # Same iterations on a 3x faster PE -> 1/3 the comp time.
        cluster = make_cluster(n_fast=1, n_slow=1)
        result = simulate("S", uniform_workload, cluster)
        fast, slow = result.workers
        # Static halves: each computes 100 units.
        assert slow.t_comp == pytest.approx(3 * fast.t_comp, rel=0.01)

    def test_terminal_idle_counted_as_wait(self, uniform_workload):
        # With static scheduling on a 3x-heterogeneous pair, the fast
        # PE idles ~2/3 of the run; its buckets must account up to T_p.
        cluster = make_cluster(n_fast=1, n_slow=1)
        result = simulate("S", uniform_workload, cluster)
        fast = result.workers[0]
        assert fast.busy == pytest.approx(result.t_p, rel=0.05)

    def test_tp_is_last_result_arrival(self, uniform_workload,
                                       hetero_cluster):
        result = simulate("TSS", uniform_workload, hetero_cluster)
        last_completion = max(c.completed_at for c in result.chunks)
        assert result.t_p >= last_completion

    def test_chunk_records_cover_loop(self, uniform_workload,
                                      hetero_cluster):
        result = simulate("GSS", uniform_workload, hetero_cluster)
        covered = sorted(
            (c.start, c.stop) for c in result.chunks
        )
        cursor = 0
        for start, stop in covered:
            assert start == cursor
            cursor = stop
        assert cursor == uniform_workload.size


class TestHeterogeneityEffects:
    def test_distributed_beats_simple_static_imbalance(
        self, peak_workload
    ):
        cluster = make_cluster(n_fast=2, n_slow=2)
        simple = simulate("FSS", peak_workload, cluster)
        dist = simulate("DFSS", peak_workload, cluster)
        assert dist.t_p <= simple.t_p * 1.05

    def test_distributed_balances_comp_times(self, uniform_workload):
        cluster = make_cluster(n_fast=2, n_slow=2)
        dist = simulate("DTSS", uniform_workload, cluster)
        assert dist.comp_imbalance() < 0.5

    def test_fast_workers_do_more_iterations_distributed(
        self, uniform_workload
    ):
        cluster = make_cluster(n_fast=1, n_slow=1)
        dist = simulate("DFSS", uniform_workload, cluster)
        fast, slow = dist.workers
        assert fast.iterations > 2 * slow.iterations


class TestNondedicatedMode:
    def test_overload_slows_computation(self, uniform_workload):
        ded = simulate("TSS", uniform_workload, make_cluster())
        over = simulate(
            "TSS", uniform_workload,
            make_cluster(overloaded=(0, 2), q=3),
        )
        assert over.t_p > ded.t_p

    def test_distributed_adapts_to_overload(self, uniform_workload):
        cluster = make_cluster(overloaded=(0,), q=3)
        simple = simulate("FSS", uniform_workload, cluster)
        dist = simulate("DFSS", uniform_workload, cluster)
        assert dist.t_p <= simple.t_p

    def test_mid_run_load_change_triggers_rederivation(self):
        # Loads jump on most PEs mid-run; DTSS must re-derive.
        wl = UniformWorkload(2000, unit=1.0)
        nodes = [
            NodeSpec(
                name=f"n{i}",
                speed=100.0,
                load=StepLoad([(5.0, 4)]),
            )
            for i in range(4)
        ]
        cluster = ClusterSpec(nodes=nodes)
        result = simulate("DTSS", wl, cluster)
        assert result.rederivations >= 1
        assert result.total_iterations == 2000


class TestStarvation:
    def test_classic_acp_deadlocks(self):
        # The paper's Sec. 5.2-I scenario: both PEs floor to ACP 0.
        wl = UniformWorkload(100)
        nodes = [
            NodeSpec(name="a", speed=100.0, load=ConstantLoad(2),
                     virtual_power=1.0),
            NodeSpec(name="b", speed=300.0, load=ConstantLoad(4),
                     virtual_power=3.0),
        ]
        cluster = ClusterSpec(nodes=nodes)
        with pytest.raises(StarvationError):
            simulate("DTSS", wl, cluster, acp_model=CLASSIC_ACP)

    def test_improved_acp_runs_same_cluster(self):
        wl = UniformWorkload(100)
        nodes = [
            NodeSpec(name="a", speed=100.0, load=ConstantLoad(2),
                     virtual_power=1.0),
            NodeSpec(name="b", speed=300.0, load=ConstantLoad(4),
                     virtual_power=3.0),
        ]
        cluster = ClusterSpec(nodes=nodes)
        result = simulate("DTSS", wl, cluster, acp_model=IMPROVED_ACP)
        assert result.total_iterations == 100

    def test_a_min_excludes_slow_worker(self):
        # A_min = 6: the loaded slow PE (A = 5) sits out; the fast one
        # (A = 7) does everything.
        wl = UniformWorkload(100)
        nodes = [
            NodeSpec(name="slow", speed=100.0, load=ConstantLoad(2),
                     virtual_power=1.0),
            NodeSpec(name="fast", speed=300.0, load=ConstantLoad(4),
                     virtual_power=3.0),
        ]
        cluster = ClusterSpec(nodes=nodes)
        model = AcpModel(scale=10, a_min=6)
        result = simulate("DTSS", wl, cluster, acp_model=model)
        assert result.workers[0].iterations == 0
        assert result.workers[1].iterations == 100


class TestEdgeCases:
    def test_empty_loop(self, hetero_cluster):
        result = simulate("TSS", UniformWorkload(0), hetero_cluster)
        assert result.t_p == 0.0
        assert result.total_iterations == 0

    def test_more_workers_than_iterations(self):
        cluster = make_cluster(n_fast=4, n_slow=4)
        result = simulate("SS", UniformWorkload(3), cluster)
        assert result.total_iterations == 3

    def test_single_worker(self):
        cluster = make_cluster(n_fast=1, n_slow=0)
        result = simulate("GSS", UniformWorkload(50), cluster)
        assert result.total_iterations == 50

    def test_size_mismatch_rejected(self, hetero_cluster):
        sched = make("TSS", 999, hetero_cluster.size)
        with pytest.raises(SimulationError):
            simulate(sched, UniformWorkload(100), hetero_cluster)

    def test_worker_count_mismatch_rejected(self, hetero_cluster):
        sched = make("TSS", 100, 2)
        with pytest.raises(SimulationError):
            simulate(sched, UniformWorkload(100), hetero_cluster)

    def test_factory_callable_accepted(self, uniform_workload,
                                       hetero_cluster):
        result = simulate(
            lambda total, workers: make("CSS", total, workers, k=25),
            uniform_workload,
            hetero_cluster,
        )
        assert result.total_chunks == 8


class TestDeterminism:
    def test_same_inputs_same_result(self, peak_workload):
        cluster = make_cluster()
        a = simulate("DTSS", peak_workload, cluster)
        b = simulate("DTSS", peak_workload, make_cluster())
        assert a.t_p == b.t_p
        assert [c.size for c in a.chunks] == [c.size for c in b.chunks]
