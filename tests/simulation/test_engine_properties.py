"""Property-based tests of the DES engines (hypothesis).

For arbitrary small clusters, load traces, and workloads, every engine
must conserve the loop, keep time monotone, and be deterministic.
These are the end-to-end versions of the scheme-level invariants in
``tests/core/test_properties.py``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    ClusterSpec,
    ConstantLoad,
    NodeSpec,
    RandomLoad,
    simulate,
    simulate_affinity,
    simulate_tree,
)
from repro.workloads import GaussianPeakWorkload, RandomWorkload

ENGINE_SCHEMES = ["SS", "GSS", "TSS", "FSS", "FISS", "TFSS",
                  "DTSS", "DFSS", "DFISS", "DTFSS"]


@st.composite
def cluster_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    nodes = []
    for i in range(n):
        speed = draw(st.floats(min_value=10.0, max_value=1000.0,
                               allow_nan=False))
        q = draw(st.integers(min_value=1, max_value=4))
        latency = draw(st.floats(min_value=0.0, max_value=0.01,
                                 allow_nan=False))
        nodes.append(
            NodeSpec(
                name=f"n{i}",
                speed=speed,
                latency=latency,
                bandwidth=draw(st.floats(min_value=1e5, max_value=1e8,
                                         allow_nan=False)),
                load=ConstantLoad(q),
            )
        )
    return ClusterSpec(nodes=nodes)


@st.composite
def workload_strategy(draw):
    size = draw(st.integers(min_value=0, max_value=400))
    kind = draw(st.sampled_from(["peak", "random"]))
    if kind == "peak":
        return GaussianPeakWorkload(size, amplitude=draw(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
        ))
    return RandomWorkload(size, seed=draw(
        st.integers(min_value=0, max_value=100)
    ))


@given(
    st.sampled_from(ENGINE_SCHEMES),
    workload_strategy(),
    cluster_strategy(),
)
@settings(max_examples=80, deadline=None)
def test_master_engine_conserves(scheme, workload, cluster):
    result = simulate(scheme, workload, cluster)
    assert result.total_iterations == workload.size
    assert result.t_p >= 0
    for chunk in result.chunks:
        assert chunk.completed_at >= chunk.assigned_at
    for w in result.workers:
        assert w.t_com >= 0 and w.t_wait >= -1e-9 and w.t_comp >= 0


@given(workload_strategy(), cluster_strategy(), st.booleans())
@settings(max_examples=50, deadline=None)
def test_tree_engine_conserves(workload, cluster, weighted):
    result = simulate_tree(workload, cluster, weighted=weighted,
                           grain=4)
    assert result.total_iterations == workload.size


@given(workload_strategy(), cluster_strategy())
@settings(max_examples=40, deadline=None)
def test_affinity_engine_conserves(workload, cluster):
    result = simulate_affinity(workload, cluster)
    assert result.total_iterations == workload.size


@given(
    st.sampled_from(["TSS", "DTSS", "DFSS"]),
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_engine_deterministic_under_random_load(
    scheme, size, n_nodes, seed
):
    def build():
        nodes = [
            NodeSpec(
                name=f"n{i}",
                speed=100.0 * (i + 1),
                load=RandomLoad(seed=seed + i),
            )
            for i in range(n_nodes)
        ]
        return ClusterSpec(nodes=nodes)

    wl = GaussianPeakWorkload(size, amplitude=10.0)
    a = simulate(scheme, wl, build())
    b = simulate(scheme, wl, build())
    assert a.t_p == b.t_p
    assert [c.size for c in a.chunks] == [c.size for c in b.chunks]
