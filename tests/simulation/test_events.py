"""Tests for the discrete-event queue."""

from __future__ import annotations

import pytest

from repro.simulation import EventQueue, SimulationError


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(3.0, lambda e: fired.append("c"))
        q.schedule(1.0, lambda e: fired.append("a"))
        q.schedule(2.0, lambda e: fired.append("b"))
        q.run()
        assert fired == ["a", "b", "c"]
        assert q.now == 3.0

    def test_fifo_tiebreak(self):
        q = EventQueue()
        fired = []
        for label in "abc":
            q.schedule(1.0, lambda e, s=label: fired.append(s))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.schedule(1.0, lambda e: q.pop())
        q.run()
        with pytest.raises(SimulationError):
            q.schedule_at(0.5, lambda e: None)
        with pytest.raises(SimulationError):
            q.schedule(-1.0, lambda e: None)

    def test_actions_can_schedule_more(self):
        q = EventQueue()
        fired = []

        def chain(event):
            fired.append(q.now)
            if q.now < 3.0:
                q.schedule(1.0, chain)

        q.schedule(1.0, chain)
        q.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_until_bound(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda e: fired.append(1))
        q.schedule(5.0, lambda e: fired.append(5))
        q.run(until=2.0)
        assert fired == [1]
        assert len(q) == 1

    def test_runaway_guard(self):
        q = EventQueue()

        def forever(event):
            q.schedule(0.001, forever)

        q.schedule(0.001, forever)
        with pytest.raises(SimulationError):
            q.run(max_events=100)

    def test_payload_and_kind(self):
        q = EventQueue()
        seen = []
        q.schedule(
            1.0, lambda e: seen.append((e.kind, e.payload)),
            kind="ping", payload={"x": 1},
        )
        q.run()
        assert seen == [("ping", {"x": 1})]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None
