"""Failure-injection tests for the DES engine (fail-stop workers)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    ClusterSpec,
    NodeSpec,
    SimulationError,
    simulate,
)
from repro.workloads import GaussianPeakWorkload, UniformWorkload


def cluster_with_failures(
    failures: dict[int, float], n: int = 4, speed: float = 100.0
) -> ClusterSpec:
    return ClusterSpec(
        nodes=[
            NodeSpec(name=f"n{i}", speed=speed,
                     fails_at=failures.get(i))
            for i in range(n)
        ]
    )


class TestSingleDeath:
    def test_loop_completes(self):
        wl = UniformWorkload(300)
        result = simulate("TSS", wl, cluster_with_failures({0: 0.5}))
        assert result.total_iterations == 300

    def test_results_complete_and_correct(self):
        wl = GaussianPeakWorkload(200, amplitude=20.0)
        result = simulate(
            "GSS", wl, cluster_with_failures({1: 0.3}),
            collect_results=True,
        )
        np.testing.assert_allclose(result.results, wl.costs())

    def test_each_iteration_computed_exactly_once(self):
        wl = UniformWorkload(250)
        result = simulate("FSS", wl, cluster_with_failures({0: 0.4}))
        spans = sorted((c.start, c.stop) for c in result.chunks)
        cursor = 0
        for start, stop in spans:
            assert start == cursor
            cursor = stop
        assert cursor == 250

    def test_dead_worker_does_no_further_work(self):
        wl = UniformWorkload(400)
        result = simulate("TSS", wl, cluster_with_failures({2: 0.2}))
        dead = result.workers[2]
        # Whatever it delivered before dying stays; nothing after.
        assert dead.finished_at <= 0.2 + 1e-9 or dead.iterations >= 0
        last_by_dead = [
            c for c in result.chunks if c.worker == 2
        ]
        for c in last_by_dead:
            # Records by the dead worker are only those whose results
            # reached the master before the death.
            assert c.assigned_at < 0.2

    def test_death_slows_the_run(self):
        wl = UniformWorkload(400)
        healthy = simulate("TSS", wl, cluster_with_failures({}))
        failed = simulate("TSS", wl, cluster_with_failures({0: 0.1}))
        assert failed.t_p > healthy.t_p

    def test_distributed_scheme_survives_death(self):
        wl = UniformWorkload(500)
        result = simulate("DTSS", wl,
                          cluster_with_failures({0: 0.5}))
        assert result.total_iterations == 500


class TestMultipleDeaths:
    def test_two_deaths(self):
        wl = UniformWorkload(300)
        result = simulate(
            "DFSS", wl, cluster_with_failures({0: 0.2, 1: 0.6})
        )
        assert result.total_iterations == 300

    def test_death_before_start(self):
        wl = UniformWorkload(100)
        result = simulate("TSS", wl, cluster_with_failures({3: 0.0}))
        assert result.total_iterations == 100
        assert result.workers[3].iterations == 0

    def test_all_dead_raises(self):
        wl = UniformWorkload(100)
        with pytest.raises(SimulationError):
            simulate(
                "TSS", wl,
                cluster_with_failures({0: 0.1, 1: 0.1, 2: 0.1,
                                       3: 0.1}),
            )

    def test_survivor_finishes_everything(self):
        wl = UniformWorkload(200)
        result = simulate(
            "SS", wl,
            cluster_with_failures({0: 0.05, 1: 0.05, 2: 0.05}),
        )
        assert result.workers[3].iterations >= 190


class TestRequeueOrder:
    def test_two_lost_intervals_reassigned_in_loop_order(self):
        # CSS(25) on I=100 with 4 workers: the first wave hands
        # [0,25) to n0, [25,50) to n1, [50,75) to n2, [75,100) to n3.
        # n0 and n1 die mid-chunk holding their intervals; n2 (made
        # slightly faster so it reports back first) and n3 pick up the
        # requeued work.  The requeue is FIFO, so the survivor that
        # asks first must receive [0,25) -- the loop-order interval --
        # not [25,50).
        wl = UniformWorkload(100)
        cluster = ClusterSpec(nodes=[
            NodeSpec(name="n0", speed=100.0, fails_at=0.10),
            NodeSpec(name="n1", speed=100.0, fails_at=0.11),
            NodeSpec(name="n2", speed=110.0),
            NodeSpec(name="n3", speed=100.0),
        ])
        result = simulate("CSS(25)", wl, cluster)
        assert result.total_iterations == 100
        redone = {
            rec.start: rec
            for rec in result.chunks
            if rec.worker in (2, 3) and rec.start in (0, 25)
        }
        assert set(redone) == {0, 25}
        assert redone[0].assigned_at < redone[25].assigned_at
        assert redone[0].worker == 2  # the first survivor to ask

    def test_requeue_fifo_under_sequential_deaths(self):
        # Three deaths, three lost intervals; survivors must drain
        # them lowest-start-first regardless of death order.
        wl = UniformWorkload(100)
        cluster = ClusterSpec(nodes=[
            NodeSpec(name="n0", speed=100.0, fails_at=0.12),
            NodeSpec(name="n1", speed=100.0, fails_at=0.11),
            NodeSpec(name="n2", speed=100.0, fails_at=0.10),
            NodeSpec(name="n3", speed=100.0),
        ])
        result = simulate("CSS(25)", wl, cluster)
        assert result.total_iterations == 100
        redone = sorted(
            (rec for rec in result.chunks
             if rec.worker == 3 and rec.start < 75),
            key=lambda rec: rec.assigned_at,
        )
        # Deaths happen n2, n1, n0 -- so the requeue receives
        # [50,75), [25,50), [0,25) in that order, and FIFO hands them
        # back in exactly that order.
        assert [rec.start for rec in redone] == [50, 25, 0]


class TestValidation:
    def test_negative_fails_at_rejected(self):
        with pytest.raises(SimulationError):
            NodeSpec(name="n", speed=1.0, fails_at=-1.0)

    def test_reliable_cluster_unaffected(self):
        # fails_at=None must be byte-identical to the pre-failure
        # engine behaviour.
        wl = GaussianPeakWorkload(300, amplitude=10.0)
        a = simulate("TFSS", wl, cluster_with_failures({}))
        b = simulate("TFSS", wl, cluster_with_failures({}))
        assert a.t_p == b.t_p


@given(
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=2, max_value=5),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.sampled_from(["SS", "GSS", "TSS", "FSS", "DTSS", "DFISS"]),
)
@settings(max_examples=60, deadline=None)
def test_property_one_death_never_loses_iterations(
    size, n, fail_time, scheme
):
    wl = UniformWorkload(size)
    cluster = cluster_with_failures({0: fail_time}, n=n)
    result = simulate(scheme, wl, cluster)
    assert result.total_iterations == size
    spans = sorted((c.start, c.stop) for c in result.chunks)
    cursor = 0
    for start, stop in spans:
        assert start == cursor
        cursor = stop
    assert cursor == size
