"""Bit-identity guard for the analytic fast path.

The fast path (:mod:`repro.simulation.fastpath`) must be *exactly* the
DES on fault-free deterministic runs -- every float in every
:class:`SimResult` field equal with ``==``, not ``approx``.  These
tests sweep the full scheme registry over heterogeneous clusters with
all three load-generator shapes, the paper cluster (identical fast
nodes force structural event-time ties, exercising the pedigree
tie-break), the decentral engine in global / hierarchical / leased
modes, and both non-string scheduler provenances (instance, factory).

Selection-rule tests pin the dispatch contract: ``fast="auto"`` falls
back silently, ``fast=True`` raises with the blocking reason,
``REPRO_FAST=0`` kills the path globally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import FaultPlan
from repro.core import make, names
from repro.decentral import DECENTRAL_SCHEMES, simulate_decentral
from repro.experiments import paper_cluster, paper_workload
from repro.obs import BufferedCollector
from repro.simulation import (
    ClusterSpec,
    ConstantLoad,
    NodeSpec,
    SimulationError,
)
from repro.simulation import fastpath
from repro.simulation.engine import simulate
from repro.simulation.loadgen import PeriodicLoad, RandomLoad
from repro.workloads import MandelbrotWorkload


def assert_identical(a, b, tag=""):
    """Field-by-field exact equality of two SimResults."""
    assert a.scheme == b.scheme, tag
    assert a.t_p == b.t_p, (tag, a.t_p, b.t_p)
    assert a.events == b.events, (tag, a.events, b.events)
    assert a.rederivations == b.rederivations, tag
    assert len(a.chunks) == len(b.chunks), tag
    for x, y in zip(a.chunks, b.chunks):
        assert (x.worker, x.start, x.stop, x.stage, x.acp) == (
            y.worker, y.start, y.stop, y.stage, y.acp), (tag, x, y)
        assert x.assigned_at == y.assigned_at, (tag, x, y)
        assert x.completed_at == y.completed_at, (tag, x, y)
    for x, y in zip(a.workers, b.workers):
        assert x.name == y.name, tag
        assert x.t_com == y.t_com, (tag, x.name, x.t_com, y.t_com)
        assert x.t_wait == y.t_wait, (tag, x.name, x.t_wait, y.t_wait)
        assert x.t_comp == y.t_comp, (tag, x.name, x.t_comp, y.t_comp)
        assert x.chunks == y.chunks, (tag, x, y)
        assert x.iterations == y.iterations, (tag, x, y)
        assert x.finished_at == y.finished_at, (tag, x, y)


def heterogeneous_cluster(loadshape="const", n=4, **overrides):
    """A deliberately lopsided cluster: no two nodes alike."""
    nodes = []
    for i in range(n):
        if loadshape == "const":
            load = ConstantLoad(1 + (i % 2))
        elif loadshape == "random":
            load = RandomLoad(seed=42 + i)
        else:
            load = PeriodicLoad(period=7.0, q_on=3, q_off=1,
                                duty=0.4, phase=0.3 * i)
        nodes.append(NodeSpec(
            name=f"n{i}", speed=80.0 + 17.0 * i,
            latency=1e-3 * (1 + i % 3), bandwidth=1.0e6 * (1 + i),
            load=load, virtual_power=1.0 + 0.5 * i, **overrides,
        ))
    return ClusterSpec(nodes=nodes, master_bandwidth=8e6,
                       master_service=2e-4, request_bytes=64.0,
                       reply_bytes=128.0, result_bytes_per_item=40.0)


@pytest.fixture(scope="module")
def workload():
    return MandelbrotWorkload(width=240, height=120)


# -- master engine ---------------------------------------------------------

#: Feedback-dependent schemes (the adaptive meta-scheduler) are
#: fast-path *ineligible* by contract: they observe the run they
#: steer, so the bit-identity sweep covers everything else and
#: test_feedback_dependent_schemes_refuse_fast pins their refusal.
FAST_ELIGIBLE = [
    n for n in names()
    if not getattr(make(n, 100, 4), "feedback_dependent", False)
]
FEEDBACK_DEPENDENT = [n for n in names() if n not in FAST_ELIGIBLE]


@pytest.mark.parametrize("scheme", FAST_ELIGIBLE)
@pytest.mark.parametrize("loadshape", ["const", "random", "periodic"])
def test_master_bit_identity(workload, scheme, loadshape):
    cluster = heterogeneous_cluster(loadshape)
    a = simulate(scheme, workload, cluster, fast=True,
                 collect_results=True)
    b = simulate(scheme, workload, cluster, fast=False,
                 collect_results=True)
    assert_identical(a, b, f"{loadshape}/{scheme}")
    assert np.array_equal(a.results, b.results)


@pytest.mark.parametrize("overloaded", [(), (0, 3)])
@pytest.mark.parametrize("scheme", FAST_ELIGIBLE)
def test_master_bit_identity_paper_cluster(scheme, overloaded):
    """Identical fast PEs produce structural event-time ties; the
    pedigree tie-break must replay the DES seq order exactly."""
    wl = paper_workload(width=280, height=140)
    cluster = paper_cluster(wl, overloaded=overloaded)
    a = simulate(scheme, wl, cluster, fast=True)
    b = simulate(scheme, wl, cluster, fast=False)
    assert_identical(a, b, f"paper/{scheme}/{overloaded}")


@pytest.mark.parametrize("scheme", FEEDBACK_DEPENDENT)
def test_feedback_dependent_schemes_refuse_fast(workload, scheme):
    """fast=True must raise with the blocking reason; fast="auto"
    must fall back to the DES and match fast=False exactly."""
    cluster = heterogeneous_cluster()
    with pytest.raises(SimulationError, match="feedback-dependent"):
        simulate(scheme, workload, cluster, fast=True)
    a = simulate(scheme, workload, cluster, fast="auto")
    b = simulate(scheme, workload, cluster, fast=False)
    assert_identical(a, b, f"auto-fallback/{scheme}")


def test_master_scheduler_instance_and_factory(workload):
    cluster = heterogeneous_cluster()
    a = simulate(make("TSS", workload.size, cluster.size),
                 workload, cluster, fast=True)
    b = simulate(make("TSS", workload.size, cluster.size),
                 workload, cluster, fast=False)
    assert_identical(a, b, "instance")
    a = simulate(lambda t, w: make("FSS", t, w), workload, cluster,
                 fast=True)
    b = simulate(lambda t, w: make("FSS", t, w), workload, cluster,
                 fast=False)
    assert_identical(a, b, "factory")


# -- decentral engine ------------------------------------------------------


@pytest.mark.parametrize("scheme", sorted(DECENTRAL_SCHEMES))
@pytest.mark.parametrize("mode", [
    {}, {"group_size": 2}, {"group_size": 3, "lease": 4},
])
def test_decentral_bit_identity(workload, scheme, mode):
    cluster = heterogeneous_cluster("random", n=6)
    a = simulate_decentral(scheme, workload, cluster, fast=True,
                           collect_results=True, **mode)
    b = simulate_decentral(scheme, workload, cluster, fast=False,
                           collect_results=True, **mode)
    assert_identical(a, b, f"dec/{scheme}/{mode}")
    assert np.array_equal(a.results, b.results)


# -- selection rules -------------------------------------------------------


def test_fast_true_raises_on_chaos_plan(workload):
    with pytest.raises(SimulationError, match="fault plan"):
        simulate("SS", workload, heterogeneous_cluster(),
                 chaos=FaultPlan(), fast=True)


def test_fast_true_raises_on_collector(workload):
    with pytest.raises(SimulationError, match="collector"):
        simulate("SS", workload, heterogeneous_cluster(),
                 collector=BufferedCollector(), fast=True)


def test_fast_true_raises_on_fails_at(workload):
    with pytest.raises(SimulationError, match="fails_at"):
        simulate("SS", workload,
                 heterogeneous_cluster(fails_at=5.0), fast=True)


def test_fast_true_raises_on_shared_segment(workload):
    with pytest.raises(SimulationError, match="segment"):
        simulate("SS", workload,
                 heterogeneous_cluster(segment="lan0"), fast=True)


def test_fast_true_raises_on_decentral_chaos(workload):
    with pytest.raises(SimulationError, match="fault plan"):
        simulate_decentral("SS", workload, heterogeneous_cluster(),
                           chaos=FaultPlan(), fast=True)


def test_auto_falls_back_silently_on_collector(workload):
    """fast="auto" with a collector attached runs the DES and still
    produces the observability stream."""
    obs = BufferedCollector()
    result = simulate("SS", workload, heterogeneous_cluster(),
                      collector=obs)
    assert result.t_p > 0
    assert len(obs) > 0


def test_env_kill_switch_forces_des(workload, monkeypatch):
    """REPRO_FAST=0 disables the path even for eligible runs."""
    calls = []
    real = fastpath.run_fast_master
    monkeypatch.setattr(fastpath, "run_fast_master",
                        lambda sim: calls.append(1) or real(sim))
    cluster = heterogeneous_cluster()
    monkeypatch.setenv(fastpath.ENV_FAST, "0")
    off = simulate("SS", workload, cluster)
    assert not calls
    with pytest.raises(SimulationError, match="disabled"):
        simulate("SS", workload, cluster, fast=True)
    monkeypatch.delenv(fastpath.ENV_FAST)
    on = simulate("SS", workload, cluster)
    assert calls == [1]
    assert_identical(off, on, "kill-switch")


def test_auto_takes_fast_path_when_eligible(workload, monkeypatch):
    calls = []
    real = fastpath.run_fast_decentral
    monkeypatch.setattr(fastpath, "run_fast_decentral",
                        lambda sim: calls.append(1) or real(sim))
    simulate_decentral("GSS", workload, heterogeneous_cluster())
    assert calls == [1]


def test_results_pickle_and_serialize_roundtrip(workload):
    """Lazy chunk lists must survive pickling and to_dict/from_dict."""
    import pickle

    from repro.simulation.metrics import SimResult

    a = simulate("FSS", workload, heterogeneous_cluster(), fast=True)
    b = pickle.loads(pickle.dumps(a))
    assert_identical(a, b, "pickle")
    c = SimResult.from_dict(a.to_dict())
    assert_identical(a, c, "dict-roundtrip")
