"""Tests for run-queue load traces and exact work integration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    ConstantLoad,
    PeriodicLoad,
    RandomLoad,
    SimulationError,
    StepLoad,
    integrate_compute,
)


class TestConstantLoad:
    def test_values(self):
        trace = ConstantLoad(3)
        assert trace.q_at(0.0) == 3
        assert trace.q_at(1e9) == 3
        assert trace.next_change(5.0) is None

    def test_validation(self):
        with pytest.raises(SimulationError):
            ConstantLoad(0)


class TestStepLoad:
    def test_breakpoints(self):
        trace = StepLoad([(10.0, 3), (20.0, 1)])
        assert trace.q_at(0.0) == 1
        assert trace.q_at(10.0) == 3
        assert trace.q_at(15.0) == 3
        assert trace.q_at(20.0) == 1

    def test_next_change(self):
        trace = StepLoad([(10.0, 3), (20.0, 1)])
        assert trace.next_change(0.0) == 10.0
        assert trace.next_change(10.0) == 20.0
        assert trace.next_change(25.0) is None

    def test_validation(self):
        with pytest.raises(SimulationError):
            StepLoad([(10.0, 3), (5.0, 1)])
        with pytest.raises(SimulationError):
            StepLoad([(10.0, 0)])


class TestPeriodicLoad:
    def test_duty_cycle(self):
        trace = PeriodicLoad(period=10.0, q_on=4, q_off=1, duty=0.3)
        assert trace.q_at(0.0) == 4
        assert trace.q_at(2.9) == 4
        assert trace.q_at(3.1) == 1
        assert trace.q_at(9.9) == 1
        assert trace.q_at(10.1) == 4

    def test_next_change_progresses(self):
        trace = PeriodicLoad(period=10.0, duty=0.5)
        t = 0.0
        seen = []
        for _ in range(4):
            t = trace.next_change(t)
            seen.append(t)
        assert seen == pytest.approx([5.0, 10.0, 15.0, 20.0])

    def test_validation(self):
        with pytest.raises(SimulationError):
            PeriodicLoad(period=0.0)
        with pytest.raises(SimulationError):
            PeriodicLoad(period=1.0, duty=1.5)


class TestRandomLoad:
    def test_deterministic(self):
        a = RandomLoad(seed=3)
        b = RandomLoad(seed=3)
        ts = [0.0, 5.0, 17.0, 100.0, 999.0]
        assert [a.q_at(t) for t in ts] == [b.q_at(t) for t in ts]

    def test_alternates(self):
        trace = RandomLoad(seed=1, arrival_rate=0.5, mean_duration=2.0)
        qs = {trace.q_at(t * 0.5) for t in range(400)}
        assert qs == {1, 3}

    def test_next_change_is_future(self):
        trace = RandomLoad(seed=2)
        t = 0.0
        for _ in range(20):
            nxt = trace.next_change(t)
            assert nxt > t
            t = nxt


class TestIntegrateCompute:
    def test_dedicated_is_linear(self):
        finish = integrate_compute(5.0, 100.0, 10.0, ConstantLoad(1))
        assert finish == pytest.approx(15.0)

    def test_constant_load_scales(self):
        finish = integrate_compute(0.0, 100.0, 10.0, ConstantLoad(2))
        assert finish == pytest.approx(20.0)

    def test_step_change_mid_computation(self):
        # 10 units/s dedicated; load doubles (halves the rate) at t=5.
        trace = StepLoad([(5.0, 2)])
        finish = integrate_compute(0.0, 100.0, 10.0, trace)
        # 50 ops by t=5 at rate 10; remaining 50 at rate 5 -> 10 more s.
        assert finish == pytest.approx(15.0)

    def test_zero_work(self):
        assert integrate_compute(7.0, 0.0, 10.0, ConstantLoad(1)) == 7.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            integrate_compute(0.0, -1.0, 10.0, ConstantLoad(1))
        with pytest.raises(SimulationError):
            integrate_compute(0.0, 1.0, 0.0, ConstantLoad(1))

    @given(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_under_any_random_trace(self, start, work, speed, seed):
        """Finish time is bracketed by the dedicated and worst-Q rates."""
        trace = RandomLoad(seed=seed, q_busy=3)
        finish = integrate_compute(start, work, speed, trace)
        assert finish >= start + work / speed - 1e-6
        assert finish <= start + 3 * work / speed + 1e-6

    @given(
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_additivity(self, work, seed):
        """Integrating in two halves equals integrating at once."""
        trace = RandomLoad(seed=seed)
        whole = integrate_compute(0.0, work, 10.0, trace)
        half = integrate_compute(0.0, work / 2, 10.0, trace)
        rest = integrate_compute(half, work / 2, 10.0, trace)
        assert rest == pytest.approx(whole, rel=1e-9, abs=1e-6)
