"""Tests for shared-medium LAN segments (the 2001 hub model)."""

from __future__ import annotations

import numpy as np

from repro.simulation import ClusterSpec, NodeSpec, simulate
from repro.workloads import GaussianPeakWorkload, UniformWorkload


def cluster(segment_map: dict[int, str | None], n: int = 4,
            result_bytes: float = 16000.0) -> ClusterSpec:
    return ClusterSpec(
        nodes=[
            NodeSpec(
                name=f"n{i}",
                speed=100.0,
                bandwidth=1.25e6,
                segment=segment_map.get(i),
            )
            for i in range(n)
        ],
        result_bytes_per_item=result_bytes,
    )


class TestSharedSegments:
    def test_shared_is_slower_than_switched(self):
        wl = GaussianPeakWorkload(300, amplitude=30.0)
        switched = simulate("TSS", wl, cluster({}))
        shared = simulate(
            "TSS", wl, cluster({i: "hub" for i in range(4)})
        )
        assert shared.t_p > switched.t_p

    def test_contention_grows_with_data_volume(self):
        wl = UniformWorkload(200)
        light = simulate(
            "FSS", wl,
            cluster({i: "hub" for i in range(4)}, result_bytes=100.0),
        )
        heavy = simulate(
            "FSS", wl,
            cluster({i: "hub" for i in range(4)},
                    result_bytes=100000.0),
        )
        # Heavier piggybacks hold the hub longer.
        light_wait = sum(w.t_wait for w in light.workers)
        heavy_wait = sum(w.t_wait for w in heavy.workers)
        assert heavy_wait > light_wait

    def test_separate_segments_do_not_contend(self):
        wl = UniformWorkload(200)
        one_hub = simulate(
            "GSS", wl, cluster({i: "hub" for i in range(4)})
        )
        two_hubs = simulate(
            "GSS", wl,
            cluster({0: "a", 1: "a", 2: "b", 3: "b"}),
        )
        assert two_hubs.t_p <= one_hub.t_p + 1e-9

    def test_results_still_correct(self):
        wl = GaussianPeakWorkload(150, amplitude=10.0)
        result = simulate(
            "DTSS", wl, cluster({i: "hub" for i in range(4)}),
            collect_results=True,
        )
        np.testing.assert_allclose(result.results, wl.costs())
        assert result.total_iterations == 150

    def test_deterministic(self):
        wl = UniformWorkload(100)
        a = simulate("TSS", wl, cluster({0: "hub", 1: "hub"}))
        b = simulate("TSS", wl, cluster({0: "hub", 1: "hub"}))
        assert a.t_p == b.t_p
