"""Tests for trace export and the Gantt renderer."""

from __future__ import annotations

import csv
import io
import json

from repro.simulation import (
    chunks_to_csv,
    chunks_to_json,
    gantt_chart,
    simulate,
)
from repro.workloads import UniformWorkload

from tests.conftest import make_cluster


def run_once():
    return simulate("TSS", UniformWorkload(120), make_cluster())


class TestCsvExport:
    def test_round_trips_through_csv_reader(self):
        result = run_once()
        rows = list(csv.DictReader(io.StringIO(chunks_to_csv(result))))
        assert len(rows) == len(result.chunks)
        total = sum(int(r["size"]) for r in rows)
        assert total == 120

    def test_columns(self):
        result = run_once()
        header = chunks_to_csv(result).splitlines()[0]
        assert header.split(",") == [
            "worker", "start", "stop", "size", "stage",
            "assigned_at", "completed_at",
        ]


class TestJsonExport:
    def test_valid_json_with_metadata(self):
        result = run_once()
        doc = json.loads(chunks_to_json(result))
        assert doc["scheme"] == "TSS"
        assert doc["t_p"] == result.t_p
        assert len(doc["workers"]) == 4
        assert len(doc["chunks"]) == len(result.chunks)

    def test_chunk_fields(self):
        doc = json.loads(chunks_to_json(run_once()))
        chunk = doc["chunks"][0]
        assert set(chunk) == {
            "worker", "start", "stop", "stage", "assigned_at",
            "completed_at",
        }


class TestGantt:
    def test_one_row_per_worker(self):
        result = run_once()
        chart = gantt_chart(result, width=40)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert len(rows) == 4

    def test_busy_cells_present(self):
        result = run_once()
        chart = gantt_chart(result)
        assert "#" in chart

    def test_respects_width(self):
        result = run_once()
        chart = gantt_chart(result, width=30)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert all(len(r.split("|")[1]) == 30 for r in rows)

    def test_empty_run(self):
        result = simulate("TSS", UniformWorkload(0), make_cluster())
        assert gantt_chart(result) == "(empty run)"

    def test_straggler_visible(self):
        # A static split on a heterogeneous pair: the slow PE's row is
        # busy to the right edge, the fast one idles there.
        result = simulate(
            "S", UniformWorkload(100), make_cluster(n_fast=1, n_slow=1)
        )
        chart = gantt_chart(result, width=40)
        fast_row, slow_row = [
            line.split("|")[1]
            for line in chart.splitlines()
            if "|" in line
        ]
        assert slow_row.rstrip(".")[-1] in "#="
        assert fast_row.endswith(".")
