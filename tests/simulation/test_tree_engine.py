"""Integration tests for the TreeS discrete-event engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import SimulationError, simulate_tree
from repro.workloads import UniformWorkload

from tests.conftest import make_cluster


class TestCompletion:
    def test_all_iterations_computed(self, reordered_mandelbrot,
                                     hetero_cluster):
        result = simulate_tree(reordered_mandelbrot, hetero_cluster)
        assert result.total_iterations == reordered_mandelbrot.size

    def test_results_reproduce_serial(self, reordered_mandelbrot,
                                      hetero_cluster):
        result = simulate_tree(
            reordered_mandelbrot, hetero_cluster, collect_results=True
        )
        serial = reordered_mandelbrot.execute_serial()
        np.testing.assert_array_equal(
            np.asarray(result.results).reshape(serial.shape), serial
        )

    def test_empty_loop(self, hetero_cluster):
        result = simulate_tree(UniformWorkload(0), hetero_cluster)
        assert result.t_p == 0.0

    def test_single_worker_no_partners(self):
        cluster = make_cluster(n_fast=1, n_slow=0)
        result = simulate_tree(UniformWorkload(40), cluster)
        assert result.total_iterations == 40

    def test_fewer_iterations_than_workers(self, hetero_cluster):
        result = simulate_tree(UniformWorkload(2), hetero_cluster)
        assert result.total_iterations == 2


class TestStealing:
    def test_steals_happen_on_heterogeneous_cluster(
        self, uniform_workload
    ):
        # Even allocation on a 3x-heterogeneous cluster forces the fast
        # PEs to steal from the slow ones.
        cluster = make_cluster(n_fast=2, n_slow=2)
        result = simulate_tree(uniform_workload, cluster)
        assert result.rederivations > 0  # steal counter

    def test_weighted_allocation_reduces_steals(self, uniform_workload):
        cluster = make_cluster(n_fast=2, n_slow=2)
        even = simulate_tree(uniform_workload, cluster, weighted=False)
        weighted = simulate_tree(
            uniform_workload, cluster, weighted=True
        )
        assert weighted.rederivations <= even.rederivations

    def test_stealing_improves_makespan_vs_static(
        self, uniform_workload
    ):
        from repro.simulation import simulate

        cluster = make_cluster(n_fast=2, n_slow=2)
        static = simulate("S", uniform_workload, cluster)
        tree = simulate_tree(uniform_workload, cluster)
        assert tree.t_p < static.t_p

    def test_fast_workers_end_up_with_more_iterations(
        self, uniform_workload
    ):
        cluster = make_cluster(n_fast=1, n_slow=1)
        result = simulate_tree(uniform_workload, cluster)
        fast, slow = result.workers
        assert fast.iterations > slow.iterations


class TestFlushing:
    def test_flush_interval_affects_tp(self, uniform_workload):
        cluster = make_cluster()
        fine = simulate_tree(
            uniform_workload, cluster, flush_interval=0.05
        )
        coarse = simulate_tree(
            uniform_workload, cluster, flush_interval=50.0
        )
        # Epoch flushing: a huge interval delays the final results.
        assert coarse.t_p > fine.t_p

    def test_com_time_positive(self, reordered_mandelbrot,
                               hetero_cluster):
        result = simulate_tree(reordered_mandelbrot, hetero_cluster)
        assert all(w.t_com > 0 for w in result.workers)


class TestValidationAndDeterminism:
    def test_bad_parameters(self, uniform_workload, hetero_cluster):
        with pytest.raises(SimulationError):
            simulate_tree(uniform_workload, hetero_cluster,
                          flush_interval=0.0)
        with pytest.raises(SimulationError):
            simulate_tree(uniform_workload, hetero_cluster, grain=0)
        with pytest.raises(SimulationError):
            simulate_tree(uniform_workload, hetero_cluster, min_steal=1)

    def test_deterministic(self, peak_workload):
        a = simulate_tree(peak_workload, make_cluster(), grain=4)
        b = simulate_tree(peak_workload, make_cluster(), grain=4)
        assert a.t_p == b.t_p
        assert a.rederivations == b.rederivations

    def test_grain_does_not_change_totals(self, peak_workload,
                                          hetero_cluster):
        for grain in (1, 4, 16):
            result = simulate_tree(
                peak_workload, hetero_cluster, grain=grain
            )
            assert result.total_iterations == peak_workload.size
