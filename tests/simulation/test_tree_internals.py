"""Unit tests for TreeS engine internals (_TreeWorker mechanics)."""

from __future__ import annotations

from repro.core.tree import partner_order
from repro.simulation import NodeSpec, WorkerMetrics
from repro.simulation.tree_engine import _TreeWorker


def worker(ranges, index=0, workers=4):
    return _TreeWorker(
        index=index,
        node=NodeSpec(name=f"n{index}", speed=1.0),
        metrics=WorkerMetrics(name=f"n{index}"),
        ranges=[list(r) for r in ranges],
        partners=partner_order(index, workers),
    )


class TestPopBlock:
    def test_takes_from_front(self):
        w = worker([(0, 10)])
        assert w.pop_block(3) == (0, 3)
        assert w.pop_block(3) == (3, 6)
        assert w.remaining() == 4

    def test_grain_clipped_to_range(self):
        w = worker([(0, 2)])
        assert w.pop_block(10) == (0, 2)
        assert w.pop_block(10) is None

    def test_skips_empty_ranges(self):
        w = worker([(5, 5), (7, 9)])
        assert w.pop_block(1) == (7, 8)

    def test_crosses_range_boundary_in_two_pops(self):
        w = worker([(0, 2), (10, 12)])
        assert w.pop_block(4) == (0, 2)
        assert w.pop_block(4) == (10, 12)

    def test_empty_worker(self):
        assert worker([]).pop_block(1) is None


class TestStealHalf:
    def test_takes_back_half_of_single_range(self):
        w = worker([(0, 10)])
        assert w.steal_half(2) == (5, 10)
        assert w.remaining() == 5

    def test_victim_keeps_odd_extra(self):
        w = worker([(0, 7)])
        stolen = w.steal_half(2)
        assert stolen == (4, 7)
        assert w.remaining() == 4

    def test_refuses_below_min(self):
        w = worker([(0, 1)])
        assert w.steal_half(2) is None
        assert w.remaining() == 1

    def test_takes_whole_tail_range_when_small(self):
        # With two ranges, half the total may exceed the tail range:
        # the thief gets the whole tail (a single contiguous interval).
        w = worker([(0, 8), (20, 22)])
        stolen = w.steal_half(2)
        assert stolen == (20, 22)
        assert w.remaining() == 8

    def test_repeated_steals_converge(self):
        w = worker([(0, 100)])
        total_stolen = 0
        while True:
            stolen = w.steal_half(2)
            if stolen is None:
                break
            total_stolen += stolen[1] - stolen[0]
        assert total_stolen + w.remaining() == 100
        assert w.remaining() >= 1
