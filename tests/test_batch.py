"""Tests for repro.batch: process-parallel experiment fan-out."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.batch import ENV_JOBS, SimJob, batch_keys, resolve_jobs, run_batch
from repro.core import names
from repro.experiments import paper_cluster, paper_workload
from repro.simulation import ClusterSpec, NodeSpec
from repro.workloads import GaussianPeakWorkload, UniformWorkload


@pytest.fixture(scope="module")
def batch_workload():
    return paper_workload(width=240, height=120)


@pytest.fixture(scope="module")
def batch_cluster(batch_workload):
    return paper_cluster(batch_workload, serial_seconds=60.0)


def all_scheme_jobs(workload, cluster) -> list[SimJob]:
    jobs = [
        SimJob(scheme=scheme, workload=workload, cluster=cluster)
        for scheme in names()
    ]
    jobs.append(SimJob(
        scheme="TreeS", workload=workload, cluster=cluster,
        engine="tree", params=dict(weighted=True, grain=8),
    ))
    return jobs


class TestSimJob:
    def test_key_is_deterministic(self, batch_workload, batch_cluster):
        a = SimJob("TSS", batch_workload, batch_cluster)
        b = SimJob("TSS", paper_workload(width=240, height=120),
                   paper_cluster(paper_workload(width=240, height=120),
                                 serial_seconds=60.0))
        assert a.key == b.key

    def test_key_distinguishes_inputs(self, batch_workload,
                                      batch_cluster):
        base = SimJob("TSS", batch_workload, batch_cluster)
        assert SimJob("FSS", batch_workload, batch_cluster).key \
            != base.key
        assert SimJob("TSS", batch_workload, batch_cluster,
                      tag="x").key != base.key
        assert SimJob("TSS", batch_workload, batch_cluster,
                      params=dict(alpha=3.0)).key != base.key
        other_cluster = paper_cluster(
            batch_workload, serial_seconds=30.0
        )
        assert SimJob("TSS", batch_workload, other_cluster).key \
            != base.key

    def test_rejects_unknown_engine(self, batch_workload,
                                    batch_cluster):
        with pytest.raises(ValueError):
            SimJob("TSS", batch_workload, batch_cluster,
                   engine="quantum")

    def test_job_is_picklable(self, batch_workload, batch_cluster):
        job = SimJob("DTSS", batch_workload, batch_cluster)
        clone = pickle.loads(pickle.dumps(job))
        assert clone.key == job.key
        assert clone.run().t_p == job.run().t_p

    def test_pickle_ships_costs_not_columns(self, batch_workload):
        batch_workload.costs()
        clone = pickle.loads(pickle.dumps(batch_workload))
        # The cost vector travels with the job...
        assert clone._costs is not None
        assert np.array_equal(clone.costs(), batch_workload.costs())
        # ...but the Mandelbrot column memo does not.
        assert not clone.inner._columns


class TestRunBatch:
    def test_results_in_submission_order(self, batch_workload,
                                         batch_cluster):
        jobs = [
            SimJob(s, batch_workload, batch_cluster)
            for s in ("TSS", "FSS", "GSS")
        ]
        results = run_batch(jobs, n_jobs=1)
        assert [r.scheme for r in results] == ["TSS", "FSS", "GSS"]

    def test_parallel_equals_serial_for_every_scheme(
        self, batch_workload, batch_cluster
    ):
        jobs = all_scheme_jobs(batch_workload, batch_cluster)
        serial = run_batch(jobs, n_jobs=1)
        parallel = run_batch(jobs, n_jobs=4)
        assert len(serial) == len(parallel) == len(names()) + 1
        for s, p in zip(serial, parallel):
            assert s.scheme == p.scheme
            assert s.t_p == p.t_p
            assert s.total_chunks == p.total_chunks
            assert [w.row() for w in s.workers] \
                == [w.row() for w in p.workers]

    def test_parallel_collect_results_bit_identical(self):
        wl = GaussianPeakWorkload(120, amplitude=9.0)
        cluster = ClusterSpec(nodes=[
            NodeSpec(name=f"n{i}", speed=100.0) for i in range(3)
        ])
        jobs = [SimJob("TSS", wl, cluster,
                       params=dict(collect_results=True))]
        serial = run_batch(jobs, n_jobs=1)[0]
        parallel = run_batch(jobs * 2, n_jobs=2)[0]
        assert np.array_equal(serial.results, parallel.results)

    def test_empty_batch(self):
        assert run_batch([], n_jobs=4) == []

    def test_rejects_non_jobs(self):
        with pytest.raises(TypeError):
            run_batch(["TSS"], n_jobs=1)

    def test_batch_keys_order(self, batch_workload, batch_cluster):
        jobs = [
            SimJob(s, batch_workload, batch_cluster)
            for s in ("TSS", "FSS")
        ]
        assert batch_keys(jobs) == [jobs[0].key, jobs[1].key]

    def test_batch_results_pass_the_auditor(self, batch_workload,
                                            batch_cluster):
        from repro.verify import audit_sim

        jobs = all_scheme_jobs(batch_workload, batch_cluster)
        for job, result in zip(jobs, run_batch(jobs, n_jobs=2)):
            scheme = None if job.engine == "tree" else job.scheme
            audit_sim(result, batch_workload.size,
                      scheme=scheme).raise_if_failed()

    def test_uncacheable_workload_costs_resolved_in_parent(self):
        wl = UniformWorkload(50, unit=2.0)
        cluster = ClusterSpec(nodes=[NodeSpec(name="n0", speed=10.0)])
        results = run_batch(
            [SimJob("SS", wl, cluster)], n_jobs=1
        )
        assert results[0].total_iterations == 50
        assert wl._costs is not None  # warmed by run_batch


class TestResolveJobs:
    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_zero_and_none_mean_all_cores(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "7")
        assert resolve_jobs(0) == 7
        assert resolve_jobs(2) == 2  # explicit still wins

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)
