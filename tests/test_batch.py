"""Tests for repro.batch: process-parallel experiment fan-out."""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import signal
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.batch import (
    ENV_JOBS,
    SimJob,
    batch_keys,
    resolve_jobs,
    run_batch,
    stream_batch,
)
from repro.core import names
from repro.experiments import paper_cluster, paper_workload
from repro.simulation import ClusterSpec, NodeSpec
from repro.workloads import GaussianPeakWorkload, UniformWorkload


@pytest.fixture(scope="module")
def batch_workload():
    return paper_workload(width=240, height=120)


@pytest.fixture(scope="module")
def batch_cluster(batch_workload):
    return paper_cluster(batch_workload, serial_seconds=60.0)


def all_scheme_jobs(workload, cluster) -> list[SimJob]:
    jobs = [
        SimJob(scheme=scheme, workload=workload, cluster=cluster)
        for scheme in names()
    ]
    jobs.append(SimJob(
        scheme="TreeS", workload=workload, cluster=cluster,
        engine="tree", params=dict(weighted=True, grain=8),
    ))
    return jobs


class TestSimJob:
    def test_key_is_deterministic(self, batch_workload, batch_cluster):
        a = SimJob("TSS", batch_workload, batch_cluster)
        b = SimJob("TSS", paper_workload(width=240, height=120),
                   paper_cluster(paper_workload(width=240, height=120),
                                 serial_seconds=60.0))
        assert a.key == b.key

    def test_key_distinguishes_inputs(self, batch_workload,
                                      batch_cluster):
        base = SimJob("TSS", batch_workload, batch_cluster)
        assert SimJob("FSS", batch_workload, batch_cluster).key \
            != base.key
        assert SimJob("TSS", batch_workload, batch_cluster,
                      tag="x").key != base.key
        assert SimJob("TSS", batch_workload, batch_cluster,
                      params=dict(alpha=3.0)).key != base.key
        other_cluster = paper_cluster(
            batch_workload, serial_seconds=30.0
        )
        assert SimJob("TSS", batch_workload, other_cluster).key \
            != base.key

    def test_rejects_unknown_engine(self, batch_workload,
                                    batch_cluster):
        with pytest.raises(ValueError):
            SimJob("TSS", batch_workload, batch_cluster,
                   engine="quantum")

    def test_job_is_picklable(self, batch_workload, batch_cluster):
        job = SimJob("DTSS", batch_workload, batch_cluster)
        clone = pickle.loads(pickle.dumps(job))
        assert clone.key == job.key
        assert clone.run().t_p == job.run().t_p

    def test_pickle_ships_costs_not_columns(self, batch_workload):
        batch_workload.costs()
        clone = pickle.loads(pickle.dumps(batch_workload))
        # The cost vector travels with the job...
        assert clone._costs is not None
        assert np.array_equal(clone.costs(), batch_workload.costs())
        # ...but the Mandelbrot column memo does not.
        assert not clone.inner._columns


class TestRunBatch:
    def test_results_in_submission_order(self, batch_workload,
                                         batch_cluster):
        jobs = [
            SimJob(s, batch_workload, batch_cluster)
            for s in ("TSS", "FSS", "GSS")
        ]
        results = run_batch(jobs, n_jobs=1)
        assert [r.scheme for r in results] == ["TSS", "FSS", "GSS"]

    def test_parallel_equals_serial_for_every_scheme(
        self, batch_workload, batch_cluster
    ):
        jobs = all_scheme_jobs(batch_workload, batch_cluster)
        serial = run_batch(jobs, n_jobs=1)
        parallel = run_batch(jobs, n_jobs=4)
        assert len(serial) == len(parallel) == len(names()) + 1
        for s, p in zip(serial, parallel):
            assert s.scheme == p.scheme
            assert s.t_p == p.t_p
            assert s.total_chunks == p.total_chunks
            assert [w.row() for w in s.workers] \
                == [w.row() for w in p.workers]

    def test_parallel_collect_results_bit_identical(self):
        wl = GaussianPeakWorkload(120, amplitude=9.0)
        cluster = ClusterSpec(nodes=[
            NodeSpec(name=f"n{i}", speed=100.0) for i in range(3)
        ])
        jobs = [SimJob("TSS", wl, cluster,
                       params=dict(collect_results=True))]
        serial = run_batch(jobs, n_jobs=1)[0]
        parallel = run_batch(jobs * 2, n_jobs=2)[0]
        assert np.array_equal(serial.results, parallel.results)

    def test_empty_batch(self):
        assert run_batch([], n_jobs=4) == []

    def test_rejects_non_jobs(self):
        with pytest.raises(TypeError):
            run_batch(["TSS"], n_jobs=1)

    def test_batch_keys_order(self, batch_workload, batch_cluster):
        jobs = [
            SimJob(s, batch_workload, batch_cluster)
            for s in ("TSS", "FSS")
        ]
        assert batch_keys(jobs) == [jobs[0].key, jobs[1].key]

    def test_batch_results_pass_the_auditor(self, batch_workload,
                                            batch_cluster):
        from repro.verify import audit_sim

        jobs = all_scheme_jobs(batch_workload, batch_cluster)
        for job, result in zip(jobs, run_batch(jobs, n_jobs=2)):
            scheme = None if job.engine == "tree" else job.scheme
            audit_sim(result, batch_workload.size,
                      scheme=scheme).raise_if_failed()

    def test_uncacheable_workload_costs_resolved_in_parent(self):
        wl = UniformWorkload(50, unit=2.0)
        cluster = ClusterSpec(nodes=[NodeSpec(name="n0", speed=10.0)])
        results = run_batch(
            [SimJob("SS", wl, cluster)], n_jobs=1
        )
        assert results[0].total_iterations == 50
        assert wl._costs is not None  # warmed by run_batch


def small_jobs(n=5) -> list[SimJob]:
    """Cheap, distinct, deterministic jobs (distinct keys via tag)."""
    wl = UniformWorkload(60, unit=2.0)
    cluster = ClusterSpec(nodes=[
        NodeSpec(name=f"n{i}", speed=50.0 + 10.0 * i) for i in range(3)
    ])
    schemes = ["SS", "CSS(4)", "GSS", "TSS", "FSS"]
    return [
        SimJob(schemes[i % len(schemes)], wl, cluster, tag=f"j{i}")
        for i in range(n)
    ]


def result_rows(result):
    """The comparable core of a SimResult (exact, per-chunk)."""
    return (
        result.scheme, result.t_p, result.events,
        [(c.worker, c.start, c.stop, c.assigned_at, c.completed_at)
         for c in result.chunks],
        [w.row() for w in result.workers],
    )


class _SyncPool(object):
    """Executor stub that runs inline and records submission times."""

    _max_workers = 2

    def __init__(self):
        self.submitted = 0

    def submit(self, fn, *args):
        self.submitted += 1
        fut = Future()
        fut.set_result(fn(*args))
        return fut


@dataclasses.dataclass(frozen=True)
class _KillJob(SimJob):
    """A job that SIGTERMs its own process when run (sequential path)."""

    def run(self):
        os.kill(os.getpid(), signal.SIGTERM)
        time.sleep(5.0)  # interrupted by the translated signal
        raise AssertionError("SIGTERM was not delivered")


class TestStreamBatch:
    def test_yields_submission_order_and_matches_run_batch(self):
        jobs = small_jobs()
        streamed = list(stream_batch(jobs))
        assert [idx for idx, _ in streamed] == list(range(len(jobs)))
        straight = run_batch(jobs)
        for (_, a), b in zip(streamed, straight):
            assert result_rows(a) == result_rows(b)

    def test_persist_writes_one_flushed_line_per_job(self, tmp_path):
        jobs = small_jobs()
        path = str(tmp_path / "sweep.jsonl")
        run_batch(jobs, persist=path)
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert [rec["key"] for rec in lines] == batch_keys(jobs)
        assert [rec["index"] for rec in lines] == list(range(len(jobs)))
        manifest = json.load(open(path + ".manifest.json"))
        assert manifest == {
            "total": len(jobs), "done": len(jobs), "complete": True,
        }

    def test_resume_skips_persisted_jobs(self, tmp_path, monkeypatch):
        jobs = small_jobs()
        path = str(tmp_path / "sweep.jsonl")
        first = run_batch(jobs, persist=path)
        # A resumed sweep must not execute anything: running a job now
        # is an error.
        monkeypatch.setattr(
            SimJob, "run",
            lambda self: (_ for _ in ()).throw(
                AssertionError("resume re-ran a persisted job")),
        )
        second = run_batch(jobs, persist=path, resume=True)
        for a, b in zip(first, second):
            assert result_rows(a) == result_rows(b)
        # No duplicate lines were appended.
        assert len(open(path, encoding="utf-8").readlines()) == len(jobs)

    def test_partial_resume_runs_only_the_remainder(self, tmp_path):
        jobs = small_jobs(6)
        path = str(tmp_path / "sweep.jsonl")
        # Persist the first three jobs only.
        run_batch(jobs[:3], persist=path)
        runs = []
        original = SimJob.run

        def counting_run(self):
            runs.append(self.tag)
            return original(self)

        try:
            SimJob.run = counting_run
            resumed = run_batch(jobs, persist=path, resume=True)
        finally:
            SimJob.run = original
        assert runs == ["j3", "j4", "j5"]
        assert [result_rows(r) for r in resumed] \
            == [result_rows(r) for r in run_batch(jobs)]

    def test_resume_tolerates_torn_tail_line(self, tmp_path):
        jobs = small_jobs(3)
        path = str(tmp_path / "sweep.jsonl")
        run_batch(jobs[:2], persist=path)
        # Simulate a sweep killed mid-write: torn, unterminated tail.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "dead-beef", "resu')
        resumed = run_batch(jobs, persist=path, resume=True)
        assert len(resumed) == 3
        # The torn line was newline-patched and skipped; the new record
        # starts on its own clean line after it.
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 4
        assert json.loads(lines[-1])["key"] == jobs[2].key

    def test_resume_warns_and_rewrites_torn_tail(
        self, tmp_path, caplog
    ):
        """The torn-tail skip is announced, and the half-written job
        re-runs and is rewritten whole (skip-and-rewrite)."""
        import logging

        jobs = small_jobs(3)
        path = str(tmp_path / "sweep.jsonl")
        run_batch(jobs[:2], persist=path)
        # Kill mid-write of job 2's record: its key is readable, but
        # the record is torn -- resume must treat the job as not done.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"key": jobs[2].key})[:-3])
        with caplog.at_level(logging.WARNING, logger="repro.batch"):
            resumed = run_batch(jobs, persist=path, resume=True)
        assert any("skipped 1" in rec.message for rec in caplog.records)
        assert len(resumed) == 3
        lines = open(path, encoding="utf-8").read().splitlines()
        # 2 clean + 1 torn + 1 rewritten-whole record
        assert len(lines) == 4
        assert json.loads(lines[-1])["key"] == jobs[2].key
        assert result_rows(resumed[2]) \
            == result_rows(run_batch([jobs[2]])[0])

    def test_resume_tolerates_parsed_record_without_key(self, tmp_path):
        """A tail line that *parses* but is not a record (e.g. torn at
        a coincidentally-valid point, or foreign content) must be
        skipped, not crash the resume with a KeyError."""
        jobs = small_jobs(3)
        path = str(tmp_path / "sweep.jsonl")
        run_batch(jobs[:2], persist=path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"index": 7}\n')   # valid JSON, no "key"
            fh.write('["not", "ours"]\n')  # valid JSON, not an object
        resumed = run_batch(jobs, persist=path, resume=True)
        assert [result_rows(r) for r in resumed] \
            == [result_rows(r) for r in run_batch(jobs)]

    def test_interrupt_flushes_results_and_manifest(self, tmp_path):
        """A sweep killed mid-run persists everything finished plus a
        complete=false manifest, and resume finishes the job."""
        jobs = small_jobs(5)
        path = str(tmp_path / "sweep.jsonl")
        seen = []
        with pytest.raises(KeyboardInterrupt):
            for idx, _result in stream_batch(jobs, persist=path):
                seen.append(idx)
                if idx == 1:
                    raise KeyboardInterrupt
        assert seen == [0, 1]
        manifest = json.load(open(path + ".manifest.json"))
        assert manifest == {"total": 5, "done": 2, "complete": False}
        assert len(open(path, encoding="utf-8").readlines()) == 2
        resumed = run_batch(jobs, persist=path, resume=True)
        assert [result_rows(r) for r in resumed] \
            == [result_rows(r) for r in run_batch(jobs)]
        manifest = json.load(open(path + ".manifest.json"))
        assert manifest == {"total": 5, "done": 5, "complete": True}

    def test_early_break_writes_partial_manifest(self, tmp_path):
        jobs = small_jobs(4)
        path = str(tmp_path / "sweep.jsonl")
        for idx, _result in stream_batch(jobs, persist=path):
            if idx == 0:
                break
        manifest = json.load(open(path + ".manifest.json"))
        assert manifest == {"total": 4, "done": 1, "complete": False}

    def test_sigterm_flushes_like_ctrl_c(self, tmp_path):
        """Regression: a killed sweep (SIGTERM) must leave resumable
        state -- finished lines on disk and a partial manifest."""
        jobs = small_jobs(4)
        killer = _KillJob(
            jobs[2].scheme, jobs[2].workload, jobs[2].cluster,
            tag=jobs[2].tag,
        )
        path = str(tmp_path / "sweep.jsonl")
        previous = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            run_batch([jobs[0], jobs[1], killer, jobs[3]], persist=path)
        # Handler restored after the sweep.
        assert signal.getsignal(signal.SIGTERM) is previous
        manifest = json.load(open(path + ".manifest.json"))
        assert manifest == {"total": 4, "done": 2, "complete": False}
        assert len(open(path, encoding="utf-8").readlines()) == 2
        resumed = run_batch(jobs, persist=path, resume=True)
        assert [result_rows(r) for r in resumed] \
            == [result_rows(r) for r in run_batch(jobs)]

    def test_window_bounds_inflight_submissions(self):
        jobs = small_jobs(10)
        pool = _SyncPool()
        gen = stream_batch(jobs, n_jobs=4, window=3, pool=pool)
        next(gen)
        # Only the window is submitted ahead of the consumer.
        assert pool.submitted <= 3
        consumed = 1
        for _ in gen:
            consumed += 1
            assert pool.submitted <= consumed + 3
        assert pool.submitted == len(jobs)

    def test_pool_path_persist_and_resume(self, tmp_path):
        jobs = small_jobs(5)
        path = str(tmp_path / "sweep.jsonl")
        run_batch(jobs[:2], persist=path)
        # Pool path with a partially-persisted file: cached results are
        # interleaved with pool submissions, order preserved.
        results = run_batch(jobs, persist=path, resume=True,
                            pool=_SyncPool())
        assert [result_rows(r) for r in results] \
            == [result_rows(r) for r in run_batch(jobs)]

    def test_process_pool_streaming_matches_serial(self):
        jobs = small_jobs(4)
        serial = run_batch(jobs, n_jobs=1)
        parallel = run_batch(jobs, n_jobs=2, window=2)
        assert [result_rows(r) for r in serial] \
            == [result_rows(r) for r in parallel]


class TestResolveJobs:
    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_zero_and_none_mean_all_cores(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "7")
        assert resolve_jobs(0) == 7
        assert resolve_jobs(2) == 2  # explicit still wins

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)
