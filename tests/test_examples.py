"""Smoke tests: every example script runs end-to-end (small args).

Examples are documentation that compiles; these tests keep them from
rotting.  Each runs in a subprocess exactly as a user would run it.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Chunk sizes for I = 1000" in out
    assert "[113, 113, 113, 113" in out
    assert "T_p" in out


def test_mandelbrot_cluster():
    out = run_example(
        "mandelbrot_cluster.py", "--width", "300", "--height", "150"
    )
    assert "Simple schemes, dedicated" in out
    assert "Distributed schemes, nondedicated" in out
    assert "Figure 2" in out


def test_nondedicated_adaptive():
    out = run_example("nondedicated_adaptive.py")
    assert "re-derivations = 1" in out
    assert "PEs used" in out


def test_real_multiprocessing():
    out = run_example(
        "real_multiprocessing.py", "--width", "160", "--height", "80",
        "--workers", "2",
    )
    assert "verified against serial" in out
    assert "matrix-add stressors" in out


def test_custom_scheme():
    out = run_example("custom_scheme.py")
    assert "QSS chunk trace" in out
    assert "results identical to serial: True" in out


@pytest.mark.parametrize(
    "command",
    [["table1"], ["validate", "--width", "1000", "--height", "500"]],
)
def test_cli_entry_point(command):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *command],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
