"""Unit tests for the trace invariant auditor (repro.verify)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import ChunkRecord, SimResult, WorkerMetrics
from repro.verify import (
    AuditError,
    AuditReport,
    audit_chunks,
    audit_run,
    audit_sim,
    audit_subscription,
    replay_cut_points,
)


def make_result(spans, total=None, scheme="TSS", t_p=None,
                results=None, workers=2):
    """Hand-build a SimResult whose trace is ``spans``: a list of
    ``(worker, start, stop, assigned_at, completed_at)``."""
    metrics = [WorkerMetrics(name=f"n{i}") for i in range(workers)]
    records = []
    for worker, start, stop, a, c in spans:
        records.append(ChunkRecord(worker=worker, start=start,
                                   stop=stop, assigned_at=a,
                                   completed_at=c))
        metrics[worker].chunks += 1
        metrics[worker].iterations += stop - start
    last = max((c for *_x, c in spans), default=0.0)
    return SimResult(
        scheme=scheme, workers=metrics,
        t_p=t_p if t_p is not None else last,
        chunks=records, results=results,
    )


class TestCoverage:
    def test_clean_tiling_passes(self):
        res = make_result([(0, 0, 5, 0.0, 1.0), (1, 5, 10, 0.0, 1.2)])
        report = audit_sim(res, 10)
        assert report.ok
        assert "coverage" in report.checks
        report.raise_if_failed()  # no-op on success

    def test_gap_detected(self):
        res = make_result([(0, 0, 4, 0.0, 1.0), (1, 6, 10, 0.0, 1.0)])
        report = audit_sim(res, 10)
        assert not report.ok
        assert any("gap" in v for v in report.violations)
        with pytest.raises(AuditError, match="gap"):
            report.raise_if_failed()

    def test_overlap_detected(self):
        res = make_result([(0, 0, 6, 0.0, 1.0), (1, 4, 10, 0.0, 1.0)])
        report = audit_sim(res, 10)
        assert any("overlap" in v for v in report.violations)

    def test_truncated_tail_detected(self):
        res = make_result([(0, 0, 6, 0.0, 1.0)])
        report = audit_sim(res, 10)
        assert any("never executed" in v for v in report.violations)

    def test_out_of_range_chunk_detected(self):
        res = make_result([(0, 0, 12, 0.0, 1.0)])
        report = audit_sim(res, 10)
        assert any("outside" in v for v in report.violations)

    def test_total_inferred_from_trace(self):
        res = make_result([(0, 0, 7, 0.0, 1.0), (1, 7, 9, 0.5, 1.1)])
        assert audit_sim(res).ok


class TestEventTimes:
    def test_non_causal_times_detected(self):
        res = make_result([(0, 0, 10, 2.0, 1.0)])
        report = audit_sim(res, 10, )
        assert any("non-causal" in v for v in report.violations)

    def test_per_worker_time_overlap_detected(self):
        res = make_result([
            (0, 0, 5, 0.0, 2.0),
            (0, 5, 10, 1.0, 3.0),  # assigned before previous finished
        ])
        report = audit_sim(res, 10)
        assert any("overlap in time" in v for v in report.violations)

    def test_t_p_before_last_completion_detected(self):
        res = make_result([(0, 0, 10, 0.0, 5.0)], t_p=1.0)
        report = audit_sim(res, 10)
        assert any("T_p" in v for v in report.violations)


class TestMetricsAgreement:
    def test_counter_drift_detected(self):
        res = make_result([(0, 0, 10, 0.0, 1.0)])
        res.workers[0].iterations -= 3
        report = audit_sim(res, 10)
        assert any("metrics disagree" in v for v in report.violations)

    def test_unknown_worker_detected(self):
        res = make_result([(0, 0, 10, 0.0, 1.0)])
        res.chunks[0].worker = 5
        report = audit_sim(res, 10)
        assert not report.ok


class TestAcpBounds:
    def test_acp_bounds(self):
        res = make_result([(0, 0, 5, 0.0, 1.0), (1, 5, 10, 0.0, 1.0)])
        res.chunks[0].acp = 7
        res.chunks[1].acp = 0  # below the availability floor
        report = audit_sim(res, 10)
        assert "acp-bounds" in report.checks
        assert any("ACP" in v for v in report.violations)

    def test_max_acp_ceiling(self):
        res = make_result([(0, 0, 10, 0.0, 1.0)])
        res.chunks[0].acp = 99
        assert not audit_sim(res, 10, max_acp=50).ok
        res.chunks[0].acp = 49
        assert audit_sim(res, 10, max_acp=50).ok


class TestResultLength:
    def test_short_results_detected(self):
        res = make_result([(0, 0, 10, 0.0, 1.0)],
                          results=np.zeros(7))
        report = audit_sim(res, 10)
        assert any("7 values" in v for v in report.violations)


class TestConformance:
    def test_replay_matches_scheme(self):
        from repro.core import drain, make

        chunks = list(drain(make("TSS", 100, 3)))
        # conformance replays with len(result.workers) == 3 workers
        res = make_result(
            [(c.worker_id % 3, c.start, c.stop, float(i), float(i) + 0.5)
             for i, c in enumerate(chunks)],
            workers=3,
        )
        report = audit_sim(res, 100, scheme="TSS")
        assert "policy-conformance" in report.checks
        assert report.ok

    def test_moved_cut_point_detected(self):
        from repro.core import drain, make

        chunks = list(drain(make("CSS", 100, 2, k=10)))
        spans = [[0, c.start, c.stop, float(i), float(i) + 0.5]
                 for i, c in enumerate(chunks)]
        spans[3][2] += 2  # shift one boundary...
        spans[4][1] += 2  # ...keeping coverage exact
        res = make_result([tuple(s) for s in spans], workers=1)
        report = audit_sim(res, 100, scheme="CSS", k=10)
        assert any("diverge" in v for v in report.violations)

    def test_order_dependent_scheme_skipped(self):
        # FSS descends a per-PE stage ladder: no reference replay.
        assert replay_cut_points("DTSS", 100, 3) is None
        fwd = replay_cut_points("FSS", 100, 3)
        skew = replay_cut_points("FSS", 100, 3, order=[0, 1, 0, 2])
        assert fwd != skew

    def test_replay_cut_points_invariant_for_simple_chain(self):
        for scheme, kw in [("SS", {}), ("CSS", {"k": 7}), ("GSS", {}),
                           ("TSS", {})]:
            fwd = replay_cut_points(scheme, 120, 4, **kw)
            rev = replay_cut_points(scheme, 120, 4,
                                    order=[3, 2, 1, 0], **kw)
            skew = replay_cut_points(scheme, 120, 4,
                                     order=[0, 1, 0, 2, 0, 3], **kw)
            assert fwd == rev == skew
            assert 0 in fwd and 120 in fwd


class TestAuditChunksAndRun:
    def test_audit_chunks(self):
        audit_chunks([(0, 0, 4), (1, 4, 9)], 9).raise_if_failed()
        assert not audit_chunks([(0, 0, 4)], 9).ok

    def test_audit_run_against_workload(self):
        from repro.runtime import RunResult
        from repro.workloads import UniformWorkload

        wl = UniformWorkload(20)
        good = RunResult(scheme="TSS", elapsed=0.1,
                         results=wl.execute_serial(), stats={},
                         chunks=[(0, 0, 12), (1, 12, 20)])
        audit_run(good, workload=wl).raise_if_failed()
        bad = RunResult(scheme="TSS", elapsed=0.1,
                        results=wl.execute_serial()[:-1], stats={},
                        chunks=[(0, 0, 12), (1, 12, 20)])
        report = audit_run(bad, workload=wl)
        assert any("differ from the serial" in v
                   for v in report.violations)

    def test_audit_run_length_only_without_workload(self):
        from repro.runtime import RunResult

        run = RunResult(scheme="SS", elapsed=0.1,
                        results=np.zeros(5), stats={},
                        chunks=[(0, 0, 5)])
        assert audit_run(run, total=5).ok
        assert not audit_run(run, total=6).ok


class TestReport:
    def test_summary_mentions_checks_and_violations(self):
        report = AuditReport(subject="x", checks=["coverage"],
                             violations=["gap: oops"])
        text = report.summary()
        assert "VIOLATION" in text and "gap: oops" in text
        ok = AuditReport(subject="y", checks=["coverage"])
        assert "OK" in ok.summary()


class TestAuditSubscription:
    """Synthetic stream frames against the live-telemetry contract."""

    @staticmethod
    def _ev(t: float, kind: str = "compute") -> dict:
        return {"kind": kind, "source": "service", "t": t}

    def _frames(self):
        return [
            {"watch": "events", "n": 1, "drops": 0,
             "tenant": "a", "events": [self._ev(1.0)]},
            {"watch": "events", "n": 2, "drops": 0,
             "tenant": "a", "events": [self._ev(2.0)]},
            {"watch": "end", "n": 3, "drops": 0},
        ]

    def test_clean_stream_passes(self):
        report = audit_subscription(self._frames())
        assert report.ok
        assert "sequence" in report.checks
        assert "drop-accounting" in report.checks

    def test_sequence_gap_flagged(self):
        frames = self._frames()
        frames[1]["n"] = 5
        report = audit_subscription(frames)
        assert any("gap or reorder" in v for v in report.violations)

    def test_drops_must_be_cumulative(self):
        frames = self._frames()
        frames[0]["drops"] = 4
        report = audit_subscription(frames)
        assert any("went backwards" in v for v in report.violations)

    def test_end_frame_must_be_final(self):
        frames = self._frames()
        frames.append({"watch": "events", "n": 4, "drops": 0,
                       "tenant": "a", "events": []})
        report = audit_subscription(frames)
        assert any("not the final frame" in v
                   for v in report.violations)

    def test_malformed_frame_flagged(self):
        report = audit_subscription([{"watch": "events"}])
        assert not report.ok

    def test_fidelity_subset_of_trace(self):
        trace = [self._ev(1.0), self._ev(2.0), self._ev(3.0)]
        assert audit_subscription(self._frames(), trace=trace).ok
        rogue = self._frames()
        rogue[1]["events"] = [self._ev(9.0)]
        report = audit_subscription(rogue, trace=trace)
        assert any("not in" in v for v in report.violations)

    def test_completeness_requires_every_event(self):
        trace = [self._ev(1.0), self._ev(2.0), self._ev(3.0)]
        report = audit_subscription(
            self._frames(), trace=trace, complete=True
        )
        assert any("never reached" in v for v in report.violations)
        full = audit_subscription(
            self._frames(), trace=[self._ev(1.0), self._ev(2.0)],
            complete=True,
        )
        assert full.ok

    def test_complete_with_drops_is_contradictory(self):
        frames = self._frames()
        for frame in frames:
            frame["drops"] = 2
        report = audit_subscription(
            frames, trace=[self._ev(1.0), self._ev(2.0)],
            complete=True,
        )
        assert any("lossy" in v for v in report.violations)
