"""Tests for the Workload protocol and the Sec. 2.1 synthetic loops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    ConditionalWorkload,
    GaussianPeakWorkload,
    LinearWorkload,
    RandomWorkload,
    UniformWorkload,
    WorkloadError,
)


class TestProtocol:
    def test_cost_caching_and_prefix_sums(self, uniform_workload):
        wl = uniform_workload
        assert wl.cost(0) == 5.0
        assert wl.chunk_cost(0, 10) == 50.0
        assert wl.chunk_cost(10, 10) == 0.0
        assert wl.total_cost() == 1000.0

    def test_chunk_cost_matches_sum(self, peak_workload):
        wl = peak_workload
        costs = wl.costs()
        assert wl.chunk_cost(17, 105) == pytest.approx(
            costs[17:105].sum()
        )

    def test_out_of_range_rejected(self, uniform_workload):
        with pytest.raises(WorkloadError):
            uniform_workload.cost(200)
        with pytest.raises(WorkloadError):
            uniform_workload.chunk_cost(-1, 5)
        with pytest.raises(WorkloadError):
            uniform_workload.chunk_cost(5, 201)

    def test_costs_are_read_only(self, uniform_workload):
        with pytest.raises(ValueError):
            uniform_workload.costs()[0] = 99.0

    def test_len(self, uniform_workload):
        assert len(uniform_workload) == 200

    def test_negative_size_rejected(self):
        with pytest.raises(WorkloadError):
            UniformWorkload(-1)

    def test_default_execute_returns_costs(self, peak_workload):
        np.testing.assert_array_equal(
            peak_workload.execute(3, 9), peak_workload.costs()[3:9]
        )

    def test_execute_serial_covers_loop(self, peak_workload):
        assert peak_workload.execute_serial().shape == (300,)


class TestUniform:
    def test_constant_costs(self):
        wl = UniformWorkload(50, unit=2.5)
        assert set(wl.costs().tolist()) == {2.5}

    def test_invalid_unit(self):
        with pytest.raises(WorkloadError):
            UniformWorkload(10, unit=0.0)

    def test_empty_loop(self):
        wl = UniformWorkload(0)
        assert wl.total_cost() == 0.0


class TestLinear:
    def test_increasing_matches_doall_example(self):
        # L(K) proportional to K for the increasing nested loop.
        wl = LinearWorkload(10, increasing=True, base=1.0, slope=1.0)
        np.testing.assert_allclose(wl.costs(), np.arange(1, 11))

    def test_decreasing_is_mirror(self):
        inc = LinearWorkload(10, increasing=True)
        dec = LinearWorkload(10, increasing=False)
        np.testing.assert_allclose(dec.costs(), inc.costs()[::-1])

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            LinearWorkload(10, base=0.0)
        with pytest.raises(WorkloadError):
            LinearWorkload(10, slope=-1.0)


class TestConditional:
    def test_default_predicate_every_third(self):
        wl = ConditionalWorkload(9, cost_true=10.0, cost_false=1.0)
        np.testing.assert_allclose(
            wl.costs(), [10, 1, 1, 10, 1, 1, 10, 1, 1]
        )

    def test_custom_predicate(self):
        wl = ConditionalWorkload(
            6, cost_true=7.0, cost_false=2.0,
            predicate=lambda idx: idx < 3,
        )
        np.testing.assert_allclose(wl.costs(), [7, 7, 7, 2, 2, 2])

    def test_bad_predicate_shape(self):
        wl = ConditionalWorkload(
            5, predicate=lambda idx: np.ones(3, dtype=bool)
        )
        with pytest.raises(WorkloadError):
            wl.costs()

    def test_invalid_costs(self):
        with pytest.raises(WorkloadError):
            ConditionalWorkload(5, cost_true=0.0)


class TestRandom:
    def test_deterministic_given_seed(self):
        a = RandomWorkload(100, seed=7).costs()
        b = RandomWorkload(100, seed=7).costs()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomWorkload(100, seed=1).costs()
        b = RandomWorkload(100, seed=2).costs()
        assert not np.array_equal(a, b)

    def test_mean_normalised(self):
        wl = RandomWorkload(5000, seed=3, mean=4.0)
        assert wl.costs().mean() == pytest.approx(4.0)

    def test_positive_costs(self):
        assert (RandomWorkload(200, seed=5).costs() > 0).all()


class TestGaussianPeak:
    def test_peak_at_center(self):
        wl = GaussianPeakWorkload(101, amplitude=50.0, center=50.0)
        assert wl.costs().argmax() == 50

    def test_floor_respected(self):
        wl = GaussianPeakWorkload(100, amplitude=10.0, floor=2.0)
        assert wl.costs().min() >= 2.0

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            GaussianPeakWorkload(10, floor=0.0)


class TestTraceWorkload:
    def test_costs_from_array(self):
        from repro.workloads import TraceWorkload

        wl = TraceWorkload([3.0, 1.0, 4.0, 1.0, 5.0])
        assert wl.size == 5
        assert wl.cost(2) == 4.0
        assert wl.total_cost() == 14.0

    def test_defensive_copy(self):
        import numpy as np

        from repro.workloads import TraceWorkload

        src = np.array([1.0, 2.0])
        wl = TraceWorkload(src)
        src[0] = 99.0
        assert wl.cost(0) == 1.0

    def test_negative_rejected(self):
        from repro.workloads import TraceWorkload, WorkloadError

        with pytest.raises(WorkloadError):
            TraceWorkload([1.0, -1.0])

    def test_schedulable_end_to_end(self):
        import numpy as np

        from repro.simulation import simulate
        from repro.workloads import TraceWorkload

        from tests.conftest import make_cluster

        rng = np.random.default_rng(0)
        wl = TraceWorkload(rng.exponential(2.0, size=150))
        result = simulate("DTSS", wl, make_cluster())
        assert result.total_iterations == 150


class TestSpinWorkload:
    def test_uniform_costs(self):
        from repro.workloads import SpinWorkload

        wl = SpinWorkload(10, spins=3, veclen=64)
        assert len(set(wl.costs().tolist())) == 1

    def test_execute_is_deterministic(self):
        import numpy as np

        from repro.workloads import SpinWorkload

        a = SpinWorkload(6, spins=2, veclen=32).execute(0, 6)
        b = SpinWorkload(6, spins=2, veclen=32).execute(0, 6)
        np.testing.assert_array_equal(a, b)

    def test_burn_is_real_compute(self):
        import time

        from repro.workloads import SpinWorkload

        wl = SpinWorkload(4, spins=200, veclen=4096)
        wl.execute(0, 4)
        t0 = time.perf_counter()
        wl.burn(0, 4)
        assert time.perf_counter() - t0 > 0.0005

    def test_validation(self):
        from repro.workloads import SpinWorkload, WorkloadError

        with pytest.raises(WorkloadError):
            SpinWorkload(5, spins=0)
