"""Tests for the persistent cost-profile cache (repro.cache) and its
integration with Workload.costs()/cost_key()/set_costs()."""

from __future__ import annotations

import numpy as np
import pytest

from repro import cache
from repro.workloads import (
    MandelbrotWorkload,
    ReorderedWorkload,
    UniformWorkload,
)


@pytest.fixture()
def cache_dir(tmp_path):
    """A fresh active cache in a per-test directory, restored after."""
    previous = cache.get_cache()
    directory = tmp_path / "cost-cache"
    cache.configure(directory=directory)
    yield directory
    cache._active = previous


def fresh_workload() -> MandelbrotWorkload:
    return MandelbrotWorkload(80, 50, max_iter=32)


class TestCostKey:
    def test_deterministic_across_instances(self):
        assert fresh_workload().cost_key() == fresh_workload().cost_key()

    def test_sensitive_to_every_parameter(self):
        base = fresh_workload().cost_key()
        assert MandelbrotWorkload(81, 50, max_iter=32).cost_key() != base
        assert MandelbrotWorkload(80, 51, max_iter=32).cost_key() != base
        assert MandelbrotWorkload(80, 50, max_iter=33).cost_key() != base
        assert MandelbrotWorkload(
            80, 50, max_iter=32, domain=(-2.0, 1.0, -1.0, 1.0)
        ).cost_key() != base

    def test_reordered_key_depends_on_sf(self):
        inner = fresh_workload()
        k4 = ReorderedWorkload(inner, sf=4).cost_key()
        k8 = ReorderedWorkload(inner, sf=8).cost_key()
        assert k4 and k8 and k4 != k8
        assert k4 != inner.cost_key()

    def test_uncacheable_workload_has_no_key(self):
        wl = UniformWorkload(10)
        assert wl.cost_signature() is None
        assert wl.cost_key() is None


class TestColdWarm:
    def test_warm_is_bit_identical_to_cold(self, cache_dir):
        cold = fresh_workload().costs().copy()
        warm_wl = fresh_workload()
        warm = warm_wl.costs()
        assert np.array_equal(cold, warm)
        assert cache.get_cache().hits >= 1

    def test_warm_skips_compute_costs_entirely(self, cache_dir,
                                               monkeypatch):
        fresh_workload().costs()  # populate the cache

        def boom(self):  # pragma: no cover - must not run
            raise AssertionError("_compute_costs ran on a warm cache")

        monkeypatch.setattr(MandelbrotWorkload, "_compute_costs", boom)
        warm = fresh_workload()
        assert warm.costs().size == 80
        assert warm.total_cost() > 0

    def test_cache_survives_process_restart(self, cache_dir):
        cold = fresh_workload().costs().copy()
        # A new CostCache over the same directory models a new process:
        # the memory LRU is empty, only the disk layer remains.
        cache.configure(directory=cache_dir)
        assert cache.get_cache().hits == 0
        warm = fresh_workload().costs()
        assert np.array_equal(cold, warm)
        assert cache.get_cache().hits == 1

    def test_chunk_costs_match_after_cache_load(self, cache_dir):
        a = fresh_workload()
        a.costs()
        b = fresh_workload()
        b.costs()
        for lo, hi in ((0, 80), (10, 20), (79, 80), (5, 5)):
            assert a.chunk_cost(lo, hi) == b.chunk_cost(lo, hi)


class TestRobustness:
    def test_corrupted_file_is_ignored_not_fatal(self, cache_dir):
        wl = fresh_workload()
        wl.costs()
        path = cache.get_cache().path_for(wl.cost_key())
        path.write_bytes(b"this is not a npy file")
        cache.configure(directory=cache_dir)  # drop the memory layer
        recovered = fresh_workload().costs()
        assert np.array_equal(recovered, wl.costs())

    def test_version_mismatch_is_ignored_not_fatal(self, cache_dir,
                                                   monkeypatch):
        wl = fresh_workload()
        expected = wl.costs().copy()
        # Rewrite the entry with a stale version stamp.
        path = cache.get_cache().path_for(wl.cost_key())
        stale = np.concatenate(
            ([cache.CACHE_VERSION + 1, expected.size], expected)
        )
        np.save(path, stale)
        cache.configure(directory=cache_dir)
        assert cache.get_cache().get(wl.cost_key()) is None
        recovered = fresh_workload().costs()
        assert np.array_equal(recovered, expected)

    def test_truncated_payload_is_ignored(self, cache_dir):
        store = cache.get_cache()
        store.put("deadbeef", np.arange(10.0))
        path = store.path_for("deadbeef")
        raw = np.load(path)
        np.save(path, raw[:-3])  # header now disagrees with length
        cache.configure(directory=cache_dir)
        assert cache.get_cache().get("deadbeef") is None

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        previous = cache.get_cache()
        try:
            directory = tmp_path / "disabled"
            cache.configure(directory=directory, enabled=False)
            fresh_workload().costs()
            assert not directory.exists()
        finally:
            cache._active = previous

    def test_poisoned_negative_entry_recomputed(self, cache_dir):
        wl = fresh_workload()
        expected = wl.costs().copy()
        cache.get_cache().put(wl.cost_key(), -np.ones(wl.size))
        cache.configure(directory=cache_dir)
        assert np.array_equal(fresh_workload().costs(), expected)


class TestLru:
    def test_memory_layer_is_bounded(self, tmp_path):
        previous = cache.get_cache()
        try:
            store = cache.configure(
                directory=tmp_path / "lru", memory_slots=2
            )
            for i in range(5):
                store.put(f"key{i}", np.full(3, float(i)))
            assert len(store._memory) == 2
            # Evicted entries still come back from disk.
            assert np.array_equal(store.get("key0"), np.zeros(3))
        finally:
            cache._active = previous


class TestSetCosts:
    def test_injected_vector_bypasses_compute(self, cache_dir,
                                              monkeypatch):
        reference = fresh_workload().costs().copy()
        wl = fresh_workload()
        monkeypatch.setattr(
            MandelbrotWorkload, "_compute_costs",
            lambda self: (_ for _ in ()).throw(AssertionError("ran")),
        )
        cache.configure(directory=cache_dir / "empty")  # cold cache
        wl.set_costs(reference)
        assert np.array_equal(wl.costs(), reference)
        assert wl.chunk_cost(0, wl.size) == pytest.approx(
            reference.sum()
        )

    def test_rejects_wrong_shape(self):
        wl = fresh_workload()
        with pytest.raises(Exception):
            wl.set_costs(np.zeros(3))
