"""Tests for the Mandelbrot column workload (paper Sec. 2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    MandelbrotWorkload,
    WorkloadError,
    escape_counts,
    render_ascii,
)
from repro.workloads.mandelbrot import PAPER_DOMAIN


class TestEscapeCounts:
    def test_known_points(self):
        # 0 is in the set (never escapes); 2+2j escapes immediately
        # after the first iteration.
        counts = escape_counts(np.array([0 + 0j, 2 + 2j]), max_iter=30)
        assert counts[0] == 30
        assert counts[1] == 1

    def test_interior_point_costs_max_iter(self):
        counts = escape_counts(np.array([-1 + 0j]), max_iter=64)
        assert counts[0] == 64  # period-2 cycle, never escapes

    def test_counts_monotone_in_max_iter(self):
        c = np.array([-0.75 + 0.3j, 0.3 + 0.5j, -1.5 + 0.2j])
        low = escape_counts(c, max_iter=8)
        high = escape_counts(c, max_iter=64)
        assert (high >= low).all()

    def test_shape_preserved(self):
        grid = np.zeros((5, 7), dtype=np.complex128)
        assert escape_counts(grid, 10).shape == (5, 7)

    def test_invalid_max_iter(self):
        with pytest.raises(WorkloadError):
            escape_counts(np.zeros(3, dtype=complex), 0)

    def test_compaction_matches_reference(self):
        # The compacted kernel must agree with the naive reference.
        rng = np.random.default_rng(0)
        c = (rng.uniform(-2, 1, 200) + 1j * rng.uniform(-1.5, 1.5, 200))
        fast = escape_counts(c, 40)
        z = np.zeros_like(c)
        ref = np.zeros(c.shape, dtype=np.int32)
        live = np.ones(c.shape, dtype=bool)
        for _ in range(40):
            z[live] = z[live] ** 2 + c[live]
            ref[live] += 1
            live &= np.abs(z) <= 2.0
        np.testing.assert_array_equal(fast, ref)


class TestWorkload:
    def test_paper_domain_default(self, small_mandelbrot):
        assert small_mandelbrot.domain == PAPER_DOMAIN

    def test_size_is_width(self, small_mandelbrot):
        assert small_mandelbrot.size == 96

    def test_costs_bounds(self, small_mandelbrot):
        costs = small_mandelbrot.costs()
        # Every pixel costs at least 1 and at most max_iter iterations.
        assert costs.min() >= small_mandelbrot.height
        assert costs.max() <= small_mandelbrot.height * 32

    def test_irregular_profile(self, small_mandelbrot):
        # The loop must actually be irregular (the paper's point).
        costs = small_mandelbrot.costs()
        assert costs.max() > 2 * costs.min()

    def test_cost_equals_column_sum(self, small_mandelbrot):
        col = 40
        assert small_mandelbrot.cost(col) == pytest.approx(
            small_mandelbrot.column_counts(col).sum()
        )

    def test_execute_matches_costs_pathway(self, small_mandelbrot):
        flat = small_mandelbrot.execute(10, 13)
        assert flat.shape == (3 * small_mandelbrot.height,)
        np.testing.assert_array_equal(
            flat[: small_mandelbrot.height],
            small_mandelbrot.column_counts(10),
        )

    def test_chunked_execution_equals_serial(self, small_mandelbrot):
        serial = small_mandelbrot.execute_serial()
        parts = [
            small_mandelbrot.execute(a, b)
            for a, b in [(0, 30), (30, 31), (31, 96)]
        ]
        np.testing.assert_array_equal(np.concatenate(parts), serial)

    def test_image_shape(self):
        wl = MandelbrotWorkload(20, 12, max_iter=16)
        assert wl.image().shape == (12, 20)

    def test_zero_width(self):
        wl = MandelbrotWorkload(0, 10)
        assert wl.costs().shape == (0,)
        assert wl.execute(0, 0).shape == (0,)

    def test_invalid_window(self):
        with pytest.raises(WorkloadError):
            MandelbrotWorkload(10, 0)

    def test_invalid_domain(self):
        with pytest.raises(WorkloadError):
            MandelbrotWorkload(10, 10, domain=(1.0, -1.0, 0.0, 1.0))

    def test_block_boundary_consistency(self):
        # Costs computed via the blocked grid pass must equal per-column
        # computation across the _COST_BLOCK boundary.
        wl = MandelbrotWorkload(40, 16, max_iter=24)
        wl._COST_BLOCK = 16  # force multiple blocks
        costs = wl.costs()
        fresh = MandelbrotWorkload(40, 16, max_iter=24)
        for col in (0, 15, 16, 31, 39):
            assert costs[col] == fresh.column_counts(col).sum()


class TestRenderAscii:
    def test_shape_and_charset(self):
        wl = MandelbrotWorkload(16, 8, max_iter=12)
        art = render_ascii(wl.image())
        lines = art.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 16 for line in lines)

    def test_rejects_non_2d(self):
        with pytest.raises(WorkloadError):
            render_ascii(np.zeros(5))

    def test_constant_image(self):
        art = render_ascii(np.ones((2, 3)))
        assert art == "   \n   "
