"""Tests for the matrix-add load process and workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import MatrixAddWorkload, WorkloadError, matrix_add_load


class _FakeEvent(object):
    def __init__(self, fire_after: int = 10**9) -> None:
        self.calls = 0
        self.fire_after = fire_after

    def is_set(self) -> bool:
        self.calls += 1
        return self.calls > self.fire_after


class TestMatrixAddLoad:
    def test_runs_until_event(self):
        rounds = matrix_add_load(_FakeEvent(fire_after=5), size=16)
        assert rounds == 5

    def test_max_rounds_cap(self):
        rounds = matrix_add_load(_FakeEvent(), size=16, max_rounds=3)
        assert rounds == 3

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            matrix_add_load(_FakeEvent(), size=0)


class TestMatrixAddWorkload:
    def test_uniform_costs(self):
        wl = MatrixAddWorkload(n=64, size=16)
        costs = wl.costs()
        assert costs.min() > 0
        assert costs.max() - costs.min() <= 64  # one row of slack

    def test_blocks_reassemble_to_full_sum(self):
        wl = MatrixAddWorkload(n=32, size=8, seed=1)
        parts = [wl.execute(i, i + 1) for i in range(8)]
        np.testing.assert_allclose(np.vstack(parts), wl.expected())

    def test_chunked_equals_serial(self):
        wl = MatrixAddWorkload(n=40, size=10, seed=2)
        serial = wl.execute_serial()
        chunked = np.vstack([wl.execute(0, 4), wl.execute(4, 10)])
        np.testing.assert_allclose(chunked, serial)

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            MatrixAddWorkload(n=0)
        with pytest.raises(WorkloadError):
            MatrixAddWorkload(n=8, size=9)
