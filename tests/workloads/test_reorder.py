"""Tests for sampling-based loop reordering (paper Sec. 2.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    GaussianPeakWorkload,
    ReorderedWorkload,
    UniformWorkload,
    WorkloadError,
    inverse_permutation,
    sampling_permutation,
)


class TestSamplingPermutation:
    def test_paper_order(self):
        # S_f = 4 over 8 iterations: first i % 4 == 0, then == 1, ...
        perm = sampling_permutation(8, 4)
        np.testing.assert_array_equal(perm, [0, 4, 1, 5, 2, 6, 3, 7])

    def test_identity_for_sf_1(self):
        np.testing.assert_array_equal(
            sampling_permutation(10, 1), np.arange(10)
        )

    def test_sf_larger_than_size(self):
        perm = sampling_permutation(3, 10)
        assert sorted(perm.tolist()) == [0, 1, 2]

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            sampling_permutation(10, 0)
        with pytest.raises(WorkloadError):
            sampling_permutation(-1, 2)

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_is_permutation(self, size, sf):
        perm = sampling_permutation(size, sf)
        assert sorted(perm.tolist()) == list(range(size))

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_inverse_roundtrip(self, size, sf):
        perm = sampling_permutation(size, sf)
        inv = inverse_permutation(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(size))
        np.testing.assert_array_equal(inv[perm], np.arange(size))


class TestReorderedWorkload:
    def test_costs_permuted(self):
        inner = GaussianPeakWorkload(40, amplitude=9.0)
        re = ReorderedWorkload(inner, sf=4)
        np.testing.assert_allclose(
            re.costs(), inner.costs()[re.perm]
        )

    def test_total_cost_preserved(self):
        inner = GaussianPeakWorkload(123, amplitude=5.0)
        re = ReorderedWorkload(inner, sf=7)
        assert re.total_cost() == pytest.approx(inner.total_cost())

    def test_reordering_smooths_contiguous_blocks(self):
        # The point of reordering: the cost of the worst contiguous
        # quarter drops toward the mean (Figure 1's uniformization).
        inner = GaussianPeakWorkload(400, amplitude=100.0, floor=1.0)
        re = ReorderedWorkload(inner, sf=4)

        def worst_quarter(wl):
            quarter = wl.size // 4
            return max(
                wl.chunk_cost(i, i + quarter)
                for i in range(0, wl.size - quarter + 1, quarter)
            )

        assert worst_quarter(re) < worst_quarter(inner)

    def test_execute_and_restore_roundtrip(self):
        inner = GaussianPeakWorkload(24, amplitude=3.0)
        re = ReorderedWorkload(inner, sf=3)
        rows = re.execute(0, 24)
        restored = re.restore(rows)
        np.testing.assert_allclose(
            restored.ravel(), inner.execute_serial()
        )

    def test_restore_rejects_bad_shape(self):
        re = ReorderedWorkload(UniformWorkload(10), sf=2)
        with pytest.raises(WorkloadError):
            re.restore(np.zeros((5, 1)))

    def test_mandelbrot_roundtrip(self, small_mandelbrot):
        re = ReorderedWorkload(small_mandelbrot, sf=4)
        rows = re.execute(0, re.size)
        restored = re.restore(rows)
        serial = small_mandelbrot.execute_serial().reshape(
            small_mandelbrot.width, small_mandelbrot.height
        )
        np.testing.assert_array_equal(restored, serial)

    def test_name_records_sf(self, small_mandelbrot):
        assert "Sf=4" in ReorderedWorkload(small_mandelbrot, 4).name
